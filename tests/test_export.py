"""Tests for the JSON/dict result export."""

import json

import pytest

from repro.sim.export import (
    run_result_to_dict,
    suite_result_to_dict,
    to_json,
)
from repro.core.dtexl import BASELINE
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.sim.replay import TraceReplayer


@pytest.fixture(scope="module")
def result(tiny_config, tiny_trace):
    return TraceReplayer(tiny_config).run(tiny_trace, BASELINE)


class TestRunResultExport:
    def test_key_fields_present(self, result):
        payload = run_result_to_dict(result)
        for key in [
            "design_point", "l2_accesses", "frame_cycles",
            "energy_total_mj", "l1_replication_factor",
        ]:
            assert key in payload

    def test_values_match(self, result):
        payload = run_result_to_dict(result)
        assert payload["l2_accesses"] == result.l2_accesses
        assert payload["frame_cycles"] == result.frame_cycles
        assert payload["energy_total_mj"] == pytest.approx(
            result.energy.total_mj
        )

    def test_json_round_trips(self, result):
        parsed = json.loads(to_json(result))
        assert parsed["design_point"] == "baseline"

    def test_energy_components_exported(self, result):
        payload = run_result_to_dict(result)
        assert "static" in payload["energy_mj"]
        assert "l2" in payload["energy_mj"]


class TestSuiteExport:
    def test_suite_round_trip(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        suite = runner.run_suite(BASELINE)
        parsed = json.loads(to_json(suite))
        assert parsed["design_point"] == "baseline"
        assert "SWa" in parsed["games"]
        assert parsed["total_l2_accesses"] == suite.total_l2_accesses

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            to_json({"not": "a result"})
