"""Differential tests for the fast replay engine.

Three layers, three equivalences, all required to be exact:

* ``Cache`` (flat arrays) vs ``ReferenceCache`` (``OrderedDict`` spec):
  identical hit/miss sequences, counters, and resident sets on
  randomized access streams.
* ``TraceReplayer(engine="fast")`` vs ``engine="reference"``: bit-
  identical :class:`RunResult` records per (trace, design) pair.
* ``DesignSweep.run(jobs=N)`` vs serial: identical rows, failures,
  resumed lists and manifest (minus wall time).

These pin the inlined LRU body in ``_tile_quads_fast`` — any drift in
the fast path from the executable specification fails here.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, GPUConfig
from repro.core.dtexl import (
    BASELINE,
    DTEXL_BEST,
    DTexLConfig,
)
from repro.errors import ConfigError
from repro.memory.cache import Cache, ReferenceCache
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.driver import TileTraceEntry
from repro.sim.experiment import ExperimentRunner
from repro.sim.replay import ENGINES, TraceReplayer
from repro.sim.sweep import DesignSweep
from repro.shader.shader_core import ShaderCore


def small_cache_config(size=512, line=64, ways=2) -> CacheConfig:
    return CacheConfig("diff", size, line_bytes=line, associativity=ways)


# -- Cache vs ReferenceCache ----------------------------------------------


#: Line numbers drawn from a small pool so streams force conflicts,
#: evictions and re-references within a handful of sets.
line_streams = st.lists(st.integers(min_value=0, max_value=63),
                        min_size=0, max_size=300)
way_counts = st.sampled_from([1, 2, 4, 8])


class TestCacheDifferential:
    @given(lines=line_streams, ways=way_counts)
    @settings(max_examples=60, deadline=None)
    def test_hit_sequence_and_residency_identical(self, lines, ways):
        """Per-access hit/miss AND per-step resident set must agree.

        Comparing residency after every access pins the eviction order,
        not just the final tally: a wrong victim shows up as a resident-
        set difference on the very next step.
        """
        fast = Cache(small_cache_config(ways=ways))
        ref = ReferenceCache(small_cache_config(ways=ways))
        for line in lines:
            assert fast.access_line(line) == ref.access_line(line)
            assert fast.resident_line_set() == ref.resident_line_set()

    @given(lines=line_streams, ways=way_counts)
    @settings(max_examples=60, deadline=None)
    def test_counters_identical(self, lines, ways):
        fast = Cache(small_cache_config(ways=ways))
        ref = ReferenceCache(small_cache_config(ways=ways))
        fast.access_lines(lines)
        for line in lines:
            ref.access_line(line)
        assert fast.stats == ref.stats

    @given(lines=line_streams)
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_scalar(self, lines):
        """``access_lines`` is per-element ``access_line`` exactly."""
        batched = Cache(small_cache_config())
        scalar = Cache(small_cache_config())
        hits, missed = batched.access_lines(lines)
        scalar_missed = [
            line for line in lines if not scalar.access_line(line)
        ]
        assert hits == len(lines) - len(scalar_missed)
        assert missed == scalar_missed
        assert batched.stats == scalar.stats
        assert batched.resident_line_set() == scalar.resident_line_set()

    def test_missed_lines_preserve_stream_order(self):
        cache = Cache(small_cache_config())
        _, missed = cache.access_lines([5, 3, 5, 9, 3, 11])
        assert missed == [5, 3, 9, 11]

    def test_acquire_release_roundtrip(self):
        """State handed to an inlined loop writes back exactly."""
        cache = Cache(small_cache_config())
        cache.access_lines([1, 2, 1])
        index, ages, tags, num_sets, ways, tick = cache.acquire_state()
        assert index is cache._index and ages is cache._ages
        assert tags is cache._tags
        assert (num_sets, ways) == (cache._num_sets, cache._ways)
        assert tick == 3
        cache.release_state(tick + 4, hits=3, misses=1, evictions=1)
        assert cache._tick == 7
        assert cache.stats.accesses == 7  # 3 prior + 4 released
        assert cache.stats.hits == 4 and cache.stats.misses == 3
        assert cache.stats.evictions == 1


# -- fast vs reference replay ---------------------------------------------


CG_COUPLED = DTexLConfig(
    name="CG-square/const/zorder/coupled",
    grouping="CG-square", assignment="const", order="zorder",
    decoupled=False,
)


class TestReplayEngineEquivalence:
    @pytest.mark.parametrize(
        "design", [BASELINE, DTEXL_BEST, CG_COUPLED],
        ids=lambda d: d.name,
    )
    def test_results_bit_identical(self, tiny_config, tiny_trace, design):
        fast = TraceReplayer(tiny_config, engine="fast")
        ref = TraceReplayer(tiny_config, engine="reference")
        assert fast.run(tiny_trace, design) == ref.run(tiny_trace, design)

    def test_real_game_bit_identical(self, small_config, small_game_trace):
        fast = TraceReplayer(small_config, engine="fast")
        ref = TraceReplayer(small_config, engine="reference")
        for design in (BASELINE, DTEXL_BEST):
            assert fast.run(small_game_trace, design) == ref.run(
                small_game_trace, design
            )

    def test_warm_hierarchy_bit_identical(self, tiny_config, tiny_trace):
        """Multi-frame replays against warm caches agree too."""
        warm_fast = MemoryHierarchy(tiny_config, backend="fast")
        warm_ref = MemoryHierarchy(tiny_config, backend="reference")
        fast = TraceReplayer(tiny_config, engine="fast")
        ref = TraceReplayer(tiny_config, engine="reference")
        for _ in range(2):
            got = fast.run(tiny_trace, BASELINE, hierarchy=warm_fast)
            want = ref.run(tiny_trace, BASELINE, hierarchy=warm_ref)
            assert got == want

    def test_engine_names(self):
        assert ENGINES == ("fast", "reference")

    def test_unknown_engine_rejected(self, tiny_config):
        with pytest.raises(ConfigError, match="unknown replay engine"):
            TraceReplayer(tiny_config, engine="warp-speed")

    def test_unknown_backend_rejected(self, tiny_config):
        with pytest.raises(ConfigError, match="unknown cache backend"):
            MemoryHierarchy(tiny_config, backend="turbo")


class TestQuadStream:
    def test_stream_matches_quads(self, tiny_trace, tiny_config):
        side = tiny_config.tile_size // 2
        entry = next(
            e for e in tiny_trace.tiles.values() if e.quads
        )
        stream = entry.quad_stream(side)
        assert len(stream) == len(entry.quads)
        for (slot, lines, n_lines, issue), quad in zip(stream, entry.quads):
            assert slot == quad.qy * side + quad.qx
            assert lines == quad.texture_lines
            assert n_lines == len(quad.texture_lines)
            assert issue == quad.compute_cycles

    def test_stream_is_cached_per_side(self):
        entry = TileTraceEntry()
        assert entry.quad_stream(16) is entry.quad_stream(16)
        first = entry.quad_stream(16)
        entry.quad_stream(8)  # side change invalidates
        assert entry.quad_stream(8) is not first

    def test_pickle_drops_derived_stream(self):
        entry = TileTraceEntry()
        entry.quad_stream(16)
        clone = pickle.loads(pickle.dumps(entry))
        assert clone._stream is None
        assert clone == entry


class TestExecuteTotals:
    def test_matches_execute_subtile(self, tiny_config):
        from repro.raster.pipeline import SubtileWork

        work = SubtileWork(num_quads=7, compute_cycles=93, stall_cycles=41)
        a = ShaderCore(tiny_config.shader)
        b = ShaderCore(tiny_config.shader)
        via_warps = a.execute_subtile(work.warp_costs())
        via_totals = b.execute_totals(
            work.num_quads, work.compute_cycles, work.stall_cycles
        )
        assert via_totals == via_warps
        assert (a.busy_cycles, a.issue_cycles, a.warps_executed) == (
            b.busy_cycles, b.issue_cycles, b.warps_executed
        )

    def test_empty_subtile(self, tiny_config):
        core = ShaderCore(tiny_config.shader)
        done = core.execute_totals(0, 0, 0)
        assert done.total_cycles == 0 and core.busy_cycles == 0


class TestCoreLut:
    def test_lut_matches_permutation(self, tiny_config):
        design = DTEXL_BEST
        scheduler = design.build_scheduler(tiny_config)
        n_cores = tiny_config.num_shader_cores
        side = scheduler.config.quads_per_tile_side
        for step in range(min(len(scheduler.tiles), 6)):
            lut = scheduler.core_lut(step, n_cores)
            perm = scheduler.permutation_at(step)
            for qy in range(side):
                for qx in range(side):
                    want = perm[scheduler.slot_of(qx, qy)] % n_cores
                    assert lut[qy * side + qx] == want


# -- serial vs parallel sweeps --------------------------------------------


PAR_SWEEP = DesignSweep(
    groupings=["FG-xshift2", "CG-square", "no-such-grouping"],
    assignments=["const"],
    orders=["zorder"],
    decoupled=[True],
)


def manifest_without_wall_time(report):
    data = report.manifest.as_dict()
    data.pop("wall_time_s")
    data.pop("phase_seconds")
    return data


class TestParallelSweep:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self, tiny_config):
        def go(jobs):
            runner = ExperimentRunner(tiny_config, games=["SWa", "Mze"])
            return PAR_SWEEP.run(runner, jobs=jobs)

        return go(1), go(2)

    def test_rows_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.rows == parallel.rows
        assert len(serial.rows) == 2

    def test_failures_identical(self, serial_and_parallel):
        """The bad grouping fails identically under both executors."""
        serial, parallel = serial_and_parallel
        assert serial.failures == parallel.failures
        assert [f.design_point for f in parallel.failures] == [
            "no-such-grouping/const/zorder/dec"
        ]

    def test_manifests_identical_minus_wall_time(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert manifest_without_wall_time(serial) == (
            manifest_without_wall_time(parallel)
        )

    def test_parallel_manifest_stamps_phase_timings(
        self, serial_and_parallel
    ):
        """Parallel campaigns attribute wall time to render / pool / replay."""
        _, parallel = serial_and_parallel
        phases = parallel.manifest.phase_seconds
        assert set(phases) == {"render", "pool_startup", "replay"}
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert sum(phases.values()) <= parallel.wall_time_s + 1e-6

    def test_parallel_resume_skips_completed_rows(
        self, tmp_path, tiny_config
    ):
        sweep = DesignSweep(
            groupings=["FG-xshift2", "CG-square"], assignments=["const"],
            orders=["zorder"], decoupled=[True],
        )
        ckpt = tmp_path / "ckpt"
        first = ExperimentRunner(tiny_config, games=["SWa"])
        done = sweep.run(first, checkpoint_dir=ckpt)
        second = ExperimentRunner(tiny_config, games=["SWa"])
        resumed = sweep.run(
            second, checkpoint_dir=ckpt, resume=True, jobs=2
        )
        assert resumed.rows == done.rows
        assert sorted(resumed.resumed) == sorted(
            p.name for p in sweep.design_points()
        )
        assert second.renders_performed == 0

    def test_invalid_jobs_rejected(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        with pytest.raises(ConfigError, match="jobs"):
            DesignSweep().run(runner, jobs=0)

    def test_prepare_traces_requires_store(self, tiny_config):
        from repro.errors import ReplayError

        runner = ExperimentRunner(tiny_config, games=["SWa"])
        with pytest.raises(ReplayError, match="TraceCheckpointStore"):
            runner.prepare_traces()

    def test_prepare_traces_populates_store(self, tmp_path, tiny_config):
        from repro.sim.checkpoint import TraceCheckpointStore

        store = TraceCheckpointStore(tmp_path / "traces")
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        keys = runner.prepare_traces(store)
        assert set(keys) == {"SWa"}
        assert all(store.contains(k) for k in keys.values())
