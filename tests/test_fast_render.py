"""Differential tests for the fast render front-end.

The render analogue of ``test_fast_engine.py``: the batched pass-1
engine (``FrameRenderer(engine="fast")``) must produce traces
bit-identical to the scalar reference path — same ``trace_digest``,
same :class:`FrameTrace` dataclass equality (which includes the
:class:`RenderStats` counters) — over the whole game suite, over
randomized scene recipes and over adversarial hand-built meshes that
exercise clipping, culling and degenerate geometry.

A golden-digest table additionally pins the trace content itself: a
change that alters *both* engines in lockstep (and so passes the
differential tests) still fails here unless the goldens are
deliberately regenerated.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint.sanitizer import trace_digest
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.geometry.mesh import (
    DrawCommand,
    Mesh,
    Scene,
    ShaderProgram,
    Vertex,
)
from repro.geometry.transform import perspective
from repro.geometry.vec import Vec2, Vec3
from repro.sim.driver import ENGINES, FrameRenderer
from repro.texture.sampler import FilterMode, Sampler
from repro.texture.texture import TextureAllocator
from repro.workloads.games import build_game, game_aliases
from repro.workloads.recipe import BuiltWorkload, SceneRecipe

TINY = GPUConfig(screen_width=128, screen_height=64)

#: Golden fast-engine digests of every suite game at the tiny scale.
#: Regenerate deliberately (render at 128x64 and print ``trace_digest``)
#: when the trace format or the pipeline semantics change on purpose.
GOLDEN_DIGESTS = {
    "CCS": "fc651646ade518701d6872ced9145426a1a3e69768fe86da165022b5e47e8562",
    "SoD": "e001543455cafb6dc115d1987fb8f393d23bd712c779572292d0e60d3a3fcbca",
    "TRu": "b3d67870becf652c584d2495912af1a3e7d7aff5079724cb5f48786868df46ce",
    "SWa": "c857d8d55ea5b48a2b8b76fac740de31ee58333d8249031b4b04c29c9984b338",
    "CRa": "758382fd254b4f5812e5fb014cd97c350f9c15f88aea98eff5fa8d06517ec4ca",
    "RoK": "cbf73bc0a294f6ed0217cb3e500c2be234e36e651a1d6a72467f70e7e01d72be",
    "DDS": "175d90722c86af3c2d748828550340833b90dcd722f019c6a6ab751c5b9a8b59",
    "Snp": "8e8fa3a7e37200400d282ba2717e1010973a41da5b432116879515914bb06f6b",
    "Mze": "1f9bed25adbb12e452cbd4fecc99a3ff7f2e65712d4c55c776501c09d3a9be84",
    "GTr": "f4df89c618fd3a113300175e9e7a39c7485e02477aacc83b68f9fa1800023e1d",
}


def render_both(workload, config=TINY):
    """(fast trace, reference trace) for one workload."""
    fast, _ = FrameRenderer(config, engine="fast").render(workload)
    ref, _ = FrameRenderer(config, engine="reference").render(workload)
    return fast, ref


def assert_traces_identical(fast, ref):
    """Digest AND dataclass equality — stats counters included."""
    assert trace_digest(fast) == trace_digest(ref)
    assert fast == ref


# -- the game suite ---------------------------------------------------------


class TestGameSuiteDifferential:
    @pytest.mark.parametrize("alias", game_aliases())
    def test_fast_matches_golden_digest(self, alias):
        workload = build_game(alias, TINY)
        trace, _ = FrameRenderer(TINY, engine="fast").render(workload)
        assert trace_digest(trace) == GOLDEN_DIGESTS[alias]

    @pytest.mark.parametrize("alias", ["CCS", "RoK", "GTr"])
    def test_fast_matches_reference(self, alias):
        """2D, 3D and atlas-heavy games, full trace equality."""
        fast, ref = render_both(build_game(alias, TINY))
        assert_traces_identical(fast, ref)

    def test_goldens_cover_every_game(self):
        assert sorted(GOLDEN_DIGESTS) == sorted(game_aliases())


# -- randomized scene recipes ----------------------------------------------


recipe_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "is_3d": st.booleans(),
        "depth_complexity": st.floats(min_value=0.5, max_value=4.0),
        "blend_fraction": st.floats(min_value=0.0, max_value=1.0),
        "horizontal_clustering": st.floats(min_value=0.0, max_value=1.0),
        "texture_samples": st.integers(min_value=0, max_value=3),
        "atlas_grid": st.sampled_from([0, 0, 4]),
    }
)


class TestRandomScenes:
    @given(params=recipe_params)
    @settings(max_examples=20, deadline=None)
    def test_random_recipe_fast_matches_reference(self, params):
        recipe = SceneRecipe(
            name="prop", texture_budget_mib=0.25, **params
        )
        workload = recipe.build(TINY)
        fast, ref = render_both(workload)
        assert_traces_identical(fast, ref)


# -- adversarial hand-built meshes -----------------------------------------


finite = st.floats(
    min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
)
#: z spans the camera plane, so triangles straddle (and cross) the near
#: plane under the perspective projection — the scalar clip fallback.
depths = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)

vertex_strategy = st.builds(
    Vertex,
    position=st.builds(Vec3, finite, finite, depths),
    uv=st.builds(Vec2, finite, finite),
)

triangle_strategy = st.lists(vertex_strategy, min_size=3, max_size=3)

draw_flags = st.fixed_dictionaries(
    {
        "depth_write": st.booleans(),
        "blend": st.booleans(),
        "late_z": st.booleans(),
    }
)


def build_mesh_workload(triangles, flags_list, samples_list):
    """A scene of hand-built triangles under a perspective camera."""
    allocator = TextureAllocator()
    texture = allocator.create(32, 32, seed=3)
    scene = Scene(
        name="prop-mesh",
        projection_matrix=perspective(1.1, 2.0, 0.5, 10.0),
    )
    for triangle, flags, samples in zip(
        triangles, flags_list, samples_list
    ):
        mesh = Mesh(vertices=list(triangle), indices=[0, 1, 2])
        scene.add(
            DrawCommand(
                mesh=mesh,
                texture_id=texture.texture_id,
                shader=ShaderProgram(
                    alu_cycles=9, texture_samples=samples
                ),
                **flags,
            )
        )
    return BuiltWorkload(scene=scene, allocator=allocator)


class TestRandomMeshes:
    @given(
        triangles=st.lists(triangle_strategy, min_size=1, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_meshes_fast_matches_reference(self, triangles, data):
        """Clipped, culled, degenerate and offscreen triangles agree.

        Depth coordinates straddle the near plane, so the batch takes
        every branch: trivially-kept rows, trivially-rejected rows and
        rows routed through the scalar Sutherland-Hodgman fallback.
        """
        flags_list = [
            data.draw(draw_flags, label=f"flags[{i}]")
            for i in range(len(triangles))
        ]
        samples_list = [
            data.draw(
                st.integers(min_value=0, max_value=2),
                label=f"samples[{i}]",
            )
            for i in range(len(triangles))
        ]
        workload = build_mesh_workload(triangles, flags_list, samples_list)
        fast, ref = render_both(workload)
        assert_traces_identical(fast, ref)

    def test_degenerate_and_behind_camera_triangles(self):
        """Deterministic worst cases: zero area, w <= 0, offscreen."""
        def tri(*pts):
            return [
                Vertex(position=Vec3(*p), uv=Vec2(0.0, 0.0)) for p in pts
            ]
        triangles = [
            tri((0.0, 0.0, -1.0), (0.0, 0.0, -1.0), (0.0, 0.0, -1.0)),
            tri((-1.0, -1.0, 2.0), (1.0, -1.0, 2.0), (0.0, 1.0, 2.0)),
            tri((-1.0, -1.0, -1.0), (1.0, -1.0, -1.0), (0.0, 1.0, 2.0)),
            tri((50.0, 50.0, -1.0), (51.0, 50.0, -1.0), (50.0, 51.0, -1.0)),
        ]
        n = len(triangles)
        flags = [
            {"depth_write": True, "blend": False, "late_z": False}
        ] * n
        workload = build_mesh_workload(triangles, flags, [1] * n)
        fast, ref = render_both(workload)
        assert_traces_identical(fast, ref)


# -- engine selection -------------------------------------------------------


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("fast", "reference")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown render engine"):
            FrameRenderer(TINY, engine="warp-speed")

    def test_default_engine_is_fast(self):
        assert FrameRenderer(TINY).engine == "fast"

    def test_with_image_falls_back_to_reference(self, tiny_workload):
        """Image output is reference-only; the trace must not change."""
        fast = FrameRenderer(TINY, engine="fast")
        with_image, image = fast.render(tiny_workload, with_image=True)
        without, none = fast.render(tiny_workload)
        assert image is not None and none is None
        assert_traces_identical(without, with_image)

    def test_non_bilinear_filter_falls_back(self, tiny_workload):
        """Trilinear sampling has no batch path; both engines agree."""
        sampler = Sampler(filter_mode=FilterMode.TRILINEAR)
        fast, _ = FrameRenderer(
            TINY, sampler=sampler, engine="fast"
        ).render(tiny_workload)
        ref, _ = FrameRenderer(
            TINY, sampler=sampler, engine="reference"
        ).render(tiny_workload)
        assert_traces_identical(fast, ref)
