"""Tests for the vectorized texture addressing / sampling fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.addressing import morton_encode, morton_encode_array
from repro.texture.sampler import FilterMode, Sampler
from repro.texture.texture import Texture


@pytest.fixture
def texture():
    return Texture(0, 128, 64, base_address=1 << 28)


class TestMortonArray:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**15),
                st.integers(min_value=0, max_value=2**15),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar(self, points):
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        batch = morton_encode_array(xs, ys)
        for i, (x, y) in enumerate(points):
            assert int(batch[i]) == morton_encode(x, y)

    def test_preserves_shape(self):
        xs = np.zeros((3, 4, 2), dtype=np.int64)
        assert morton_encode_array(xs, xs).shape == (3, 4, 2)


class TestTexelLinesArray:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-200, max_value=400),
                st.integers(min_value=-200, max_value=400),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_with_wrapping(self, points):
        texture = Texture(0, 128, 64, base_address=1 << 28)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        levels = np.array([min(p[2], texture.max_lod) for p in points])
        batch = texture.texel_lines_array(xs, ys, levels)
        for i, (x, y, lod) in enumerate(points):
            lod = min(lod, texture.max_lod)
            assert int(batch[i]) == texture.texel_line(x, y, lod)

    def test_tall_texture(self):
        texture = Texture(0, 16, 128, base_address=1 << 28)
        xs = np.arange(16)
        ys = np.arange(16) * 7 % 128
        levels = np.zeros(16, dtype=np.int64)
        batch = texture.texel_lines_array(xs, ys, levels)
        for i in range(16):
            assert int(batch[i]) == texture.texel_line(int(xs[i]), int(ys[i]), 0)


class TestBilinearBatch:
    def test_matches_scalar_footprint(self, texture):
        sampler = Sampler(FilterMode.BILINEAR)
        rng = np.random.default_rng(3)
        u = rng.random((5, 7))
        v = rng.random((5, 7))
        level = rng.integers(0, texture.max_lod + 1, size=(5, 7))
        batch = sampler.bilinear_lines_batch(texture, u, v, level)
        assert batch.shape == (5, 7, 4)
        for i in range(5):
            for j in range(7):
                scalar = sampler.footprint(
                    texture, u[i, j], v[i, j], float(level[i, j])
                )
                assert set(batch[i, j].tolist()) == set(scalar.lines)

    def test_rejects_non_bilinear(self, texture):
        sampler = Sampler(FilterMode.TRILINEAR)
        with pytest.raises(ValueError):
            sampler.bilinear_lines_batch(
                texture, np.zeros(1), np.zeros(1), np.zeros(1, dtype=int)
            )


class TestRasterizerFastPath:
    def test_batch_equals_scalar_end_to_end(self):
        """The whole-frame trace must be bit-identical either way."""
        from repro.config import GPUConfig
        from repro.raster import rasterizer as rmod
        from repro.sim.driver import FrameRenderer
        from repro.workloads.recipe import SceneRecipe

        config = GPUConfig(screen_width=128, screen_height=64)
        recipe = SceneRecipe(
            name="fastpath", seed=21, is_3d=True, texture_budget_mib=0.3,
            depth_complexity=1.5,
        )
        workload = recipe.build(config)
        fast, _ = FrameRenderer(config).render(workload)

        original = rmod.Rasterizer._batch_footprints
        rmod.Rasterizer._batch_footprints = (
            lambda self, u, v, blocks, texture, samples: [
                self._quad_texture_footprint(u, v, bx, by, texture, samples)
                for bx, by in blocks
            ]
        )
        try:
            scalar, _ = FrameRenderer(config).render(workload)
        finally:
            rmod.Rasterizer._batch_footprints = original

        assert fast.total_quads == scalar.total_quads
        for tile in fast.tiles:
            for a, b in zip(fast.tiles[tile].quads, scalar.tiles[tile].quads):
                assert a.texture_lines == b.texture_lines
                assert a.lod == pytest.approx(b.lod)

    def test_trilinear_still_works(self):
        """Non-bilinear modes use the scalar fallback transparently."""
        from repro.config import GPUConfig
        from repro.sim.driver import FrameRenderer
        from repro.workloads.recipe import SceneRecipe

        config = GPUConfig(screen_width=64, screen_height=64)
        recipe = SceneRecipe(
            name="tri", seed=5, is_3d=False, texture_budget_mib=0.2,
            depth_complexity=1.0,
        )
        trace, _ = FrameRenderer(
            config, Sampler(FilterMode.TRILINEAR)
        ).render(recipe.build(config))
        assert trace.total_quads > 0
        assert trace.total_texture_lines > 0
