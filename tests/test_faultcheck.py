"""The ``faultcheck`` exception-flow pass: taxonomy, escapes, six checks."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.arch import Baseline, CallGraph, ModuleGraph
from repro.analysis.arch.baseline import TODO_JUSTIFICATION
from repro.analysis.flow import (
    EscapeAnalysis,
    ExceptionTaxonomy,
    FaultCheck,
    FlowConfig,
    extract_flows,
    extract_handlers,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Flow config pointing the analyzer at the synthetic ``pkg`` package.
FLOW_CONFIG = FlowConfig(faults_module="pkg.faults", cli_module="pkg.cli")

#: A small program that passes every faultcheck pass.  Each mutation
#: fixture below perturbs exactly one property of it.
CLEAN_TREE = {
    "pkg/__init__.py": "",
    "pkg/errors.py": (
        "class PkgError(Exception):\n"
        "    transient = False\n"
        "\n"
        "class FlakyError(PkgError):\n"
        "    transient = True\n"
        "\n"
        "class HardError(PkgError):\n"
        "    pass\n"
        "\n"
        "def is_transient(error):\n"
        "    return bool(getattr(error, 'transient', False))\n"
    ),
    "pkg/faults.py": (
        "SITE_SAVE = 'checkpoint.save'\n"
        "SITE_WORK = 'replay.work'\n"
        "\n"
        "class InjectedKill(BaseException):\n"
        "    pass\n"
        "\n"
        "def fault_point(site, key=None):\n"
        "    return None\n"
    ),
    "pkg/core.py": (
        "from pkg import faults\n"
        "from pkg.errors import FlakyError, HardError\n"
        "\n"
        "def risky():\n"
        "    faults.fault_point(faults.SITE_WORK)\n"
        "    raise FlakyError('flaky')\n"
        "\n"
        "def save():\n"
        "    faults.fault_point(faults.SITE_SAVE)\n"
        "    raise HardError('hard')\n"
        "\n"
        "def guarded():\n"
        "    attempt = 0\n"
        "    while True:\n"
        "        attempt += 1\n"
        "        try:\n"
        "            return risky()\n"
        "        except FlakyError:\n"
        "            if attempt > 3:\n"
        "                raise\n"
        "            continue\n"
    ),
    "pkg/cli.py": (
        "import sys\n"
        "from pkg.core import risky, save\n"
        "from pkg.errors import PkgError\n"
        "\n"
        "EXIT_OK = 0\n"
        "EXIT_FATAL = 2\n"
        "\n"
        "def cmd_run(args):\n"
        "    risky()\n"
        "    return EXIT_OK\n"
        "\n"
        "def cmd_save(args):\n"
        "    save()\n"
        "    return EXIT_OK\n"
        "\n"
        "def main(argv=None):\n"
        "    try:\n"
        "        return cmd_run(None)\n"
        "    except PkgError as error:\n"
        "        print(error, file=sys.stderr)\n"
        "        return EXIT_FATAL\n"
    ),
}


def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def run_flow(tmp_path: Path, files: dict, baseline=None,
             update_baseline: bool = False):
    src = write_tree(tmp_path / "src", files)
    check = FaultCheck(
        src, package="pkg", config=FLOW_CONFIG, baseline=baseline
    )
    return check.run(update_baseline=update_baseline)


def mutate(extra: dict) -> dict:
    files = dict(CLEAN_TREE)
    files.update(extra)
    return files


def rules_of(report) -> set:
    return {finding.rule for finding in report.findings}


# -- the taxonomy -------------------------------------------------------------


class TestTaxonomy:
    def build(self, tmp_path, files=None):
        src = write_tree(tmp_path / "src", files or CLEAN_TREE)
        graph = ModuleGraph.build(src, packages=["pkg"])
        return graph, ExceptionTaxonomy.build(graph)

    def test_indexes_project_exception_classes(self, tmp_path):
        _, taxonomy = self.build(tmp_path)
        assert "pkg.errors.PkgError" in taxonomy.classes
        assert "pkg.errors.FlakyError" in taxonomy.classes
        assert "pkg.faults.InjectedKill" in taxonomy.classes

    def test_non_exception_classes_are_excluded(self, tmp_path):
        files = mutate({
            "pkg/plain.py": "class Widget:\n    pass\n",
        })
        _, taxonomy = self.build(tmp_path, files)
        assert "pkg.plain.Widget" not in taxonomy.classes

    def test_catches_follows_the_hierarchy(self, tmp_path):
        _, taxonomy = self.build(tmp_path)
        assert taxonomy.catches("pkg.errors.PkgError",
                                "pkg.errors.FlakyError")
        assert taxonomy.catches("Exception", "pkg.errors.HardError")
        assert not taxonomy.catches("pkg.errors.FlakyError",
                                    "pkg.errors.PkgError")

    def test_injected_kill_is_not_an_exception_subclass(self, tmp_path):
        _, taxonomy = self.build(tmp_path)
        assert not taxonomy.is_exception_subclass("pkg.faults.InjectedKill")
        assert taxonomy.is_exception_subclass("pkg.errors.HardError")

    def test_transiency_is_inherited_and_overridable(self, tmp_path):
        files = mutate({
            "pkg/more.py": (
                "from pkg.errors import FlakyError\n"
                "class StillFlaky(FlakyError):\n"
                "    pass\n"
                "class Pinned(FlakyError):\n"
                "    transient = False\n"
            ),
        })
        _, taxonomy = self.build(tmp_path, files)
        assert taxonomy.is_transient("pkg.errors.FlakyError")
        assert taxonomy.is_transient("pkg.more.StillFlaky")
        assert not taxonomy.is_transient("pkg.more.Pinned")
        assert not taxonomy.is_transient("pkg.errors.HardError")

    def test_resolve_falls_back_to_unique_last_segment(self, tmp_path):
        _, taxonomy = self.build(tmp_path)
        assert taxonomy.resolve("faults.InjectedKill") == (
            "pkg.faults.InjectedKill"
        )
        assert taxonomy.resolve("ValueError") == "ValueError"
        assert taxonomy.resolve("some.Unknown") is None


# -- escape propagation -------------------------------------------------------


class TestEscapeAnalysis:
    def analyze(self, tmp_path, files):
        src = write_tree(tmp_path / "src", files)
        graph = ModuleGraph.build(src, packages=["pkg"])
        taxonomy = ExceptionTaxonomy.build(graph)
        callgraph = CallGraph(graph)
        flows = extract_flows(graph, callgraph, taxonomy)
        return EscapeAnalysis(flows, taxonomy)

    def test_direct_raises_escape(self, tmp_path):
        escapes = self.analyze(tmp_path, CLEAN_TREE)
        assert escapes.escaping("pkg.core.risky") == {
            "pkg.errors.FlakyError"
        }

    def test_escapes_propagate_through_callers(self, tmp_path):
        escapes = self.analyze(tmp_path, CLEAN_TREE)
        assert "pkg.errors.FlakyError" in escapes.escaping("pkg.cli.cmd_run")
        assert "pkg.errors.HardError" in escapes.escaping("pkg.cli.cmd_save")

    def test_try_masks_stop_propagation(self, tmp_path):
        files = mutate({
            "pkg/safe.py": (
                "from pkg.core import risky\n"
                "from pkg.errors import FlakyError\n"
                "def absorb():\n"
                "    try:\n"
                "        return risky()\n"
                "    except FlakyError:\n"
                "        return None\n"
            ),
        })
        escapes = self.analyze(tmp_path, files)
        assert escapes.escaping("pkg.safe.absorb") == set()

    def test_reraising_handler_masks_nothing(self, tmp_path):
        files = mutate({
            "pkg/log.py": (
                "from pkg.core import risky\n"
                "from pkg.errors import FlakyError\n"
                "def logged():\n"
                "    try:\n"
                "        return risky()\n"
                "    except FlakyError:\n"
                "        raise\n"
            ),
        })
        escapes = self.analyze(tmp_path, files)
        assert escapes.escaping("pkg.log.logged") == {
            "pkg.errors.FlakyError"
        }

    def test_handler_body_is_not_protected_by_its_own_try(self, tmp_path):
        files = mutate({
            "pkg/wrap.py": (
                "from pkg.errors import FlakyError, HardError\n"
                "def translate():\n"
                "    try:\n"
                "        raise FlakyError('x')\n"
                "    except FlakyError as error:\n"
                "        raise HardError('y') from error\n"
            ),
        })
        escapes = self.analyze(tmp_path, files)
        assert escapes.escaping("pkg.wrap.translate") == {
            "pkg.errors.HardError"
        }


# -- the clean program --------------------------------------------------------


class TestCleanProgram:
    def test_no_findings_on_the_clean_tree(self, tmp_path):
        report = run_flow(tmp_path, CLEAN_TREE)
        assert report.ok, [f.fingerprint for f in report.findings]
        assert report.stats()["exception_classes"] == 4


# -- mutation 1: swallowed kill-class exceptions ------------------------------


class TestSwallowedBaseException:
    def test_swallowed_injected_kill_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/boundary.py": (
                "from pkg import faults\n"
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except faults.InjectedKill:\n"
                "        return None\n"
            ),
        }))
        assert rules_of(report) == {"swallowed-base-exception"}
        (finding,) = report.findings
        assert "InjectedKill" in finding.message
        assert "pkg.boundary.shield" in finding.fingerprint

    def test_bare_except_that_swallows_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/boundary.py": (
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except:\n"
                "        return None\n"
            ),
        }))
        assert rules_of(report) == {"swallowed-base-exception"}

    def test_cleanup_then_bare_reraise_is_allowed(self, tmp_path):
        # The checkpoint-writer idiom: catch everything, undo the
        # partial write, let the kill keep flying.
        report = run_flow(tmp_path, mutate({
            "pkg/boundary.py": (
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except BaseException:\n"
                "        cleanup = None\n"
                "        raise\n"
            ),
        }))
        assert report.ok


# -- mutation 2: dropped cause chains -----------------------------------------


class TestDroppedCauseChain:
    def test_wrap_without_from_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/translate.py": (
                "from pkg.errors import HardError\n"
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except ValueError:\n"
                "        raise HardError('bad input')\n"
            ),
        }))
        assert rules_of(report) == {"dropped-cause-chain"}

    def test_bound_error_raised_from_none_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/translate.py": (
                "from pkg.errors import HardError\n"
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except ValueError as error:\n"
                "        raise HardError('bad input') from None\n"
            ),
        }))
        assert rules_of(report) == {"dropped-cause-chain"}
        (finding,) = report.findings
        assert "from error" in finding.message

    def test_explicit_from_error_is_allowed(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/translate.py": (
                "from pkg.errors import HardError\n"
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except ValueError as error:\n"
                "        raise HardError('bad input') from error\n"
            ),
        }))
        assert report.ok

    def test_unbound_from_none_is_allowed(self, tmp_path):
        # Deliberate suppression without binding the error is explicit
        # intent (the KeyError-to-ConfigError registry idiom).
        report = run_flow(tmp_path, mutate({
            "pkg/translate.py": (
                "from pkg.errors import HardError\n"
                "def parse(table, key):\n"
                "    try:\n"
                "        return table[key]\n"
                "    except KeyError:\n"
                "        raise HardError('no such key') from None\n"
            ),
        }))
        assert report.ok


# -- mutation 3: retry hygiene ------------------------------------------------


class TestRetryHygiene:
    def test_retrying_a_non_transient_error_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/retry.py": (
                "from pkg.core import save\n"
                "from pkg.errors import HardError\n"
                "def stubborn():\n"
                "    attempt = 0\n"
                "    while attempt < 5:\n"
                "        attempt += 1\n"
                "        try:\n"
                "            return save()\n"
                "        except HardError:\n"
                "            continue\n"
            ),
        }))
        assert rules_of(report) == {"non-transient-retry"}
        (finding,) = report.findings
        assert "HardError" in finding.message

    def test_retrying_a_transient_error_is_allowed(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/retry.py": (
                "from pkg.core import risky\n"
                "from pkg.errors import FlakyError\n"
                "def persistent():\n"
                "    attempt = 0\n"
                "    while attempt < 5:\n"
                "        attempt += 1\n"
                "        try:\n"
                "            return risky()\n"
                "        except FlakyError:\n"
                "            continue\n"
            ),
        }))
        assert report.ok

    def test_broad_catch_with_transiency_guard_is_allowed(self, tmp_path):
        # The run_guarded idiom: catch Exception, consult the policy.
        report = run_flow(tmp_path, mutate({
            "pkg/retry.py": (
                "from pkg.core import risky\n"
                "from pkg.errors import is_transient\n"
                "def guarded_retry():\n"
                "    while True:\n"
                "        try:\n"
                "            return risky()\n"
                "        except Exception as error:\n"
                "            if not is_transient(error):\n"
                "                raise\n"
                "            continue\n"
            ),
        }))
        assert report.ok

    def test_converting_to_a_transient_error_is_allowed(self, tmp_path):
        # The worker-pool idiom: a broken pool becomes a typed
        # transient error for the recovery machinery.
        report = run_flow(tmp_path, mutate({
            "pkg/retry.py": (
                "from pkg.core import risky\n"
                "from pkg.errors import FlakyError\n"
                "def recovering(recover):\n"
                "    while True:\n"
                "        try:\n"
                "            return risky()\n"
                "        except OSError:\n"
                "            recover(FlakyError('worker died'))\n"
                "            continue\n"
            ),
        }))
        assert report.ok

    def test_catch_in_a_for_loop_is_isolation_not_retry(self, tmp_path):
        # Per-item failure isolation iterates *distinct* work; it must
        # not be held to the transient-only retry rule.
        report = run_flow(tmp_path, mutate({
            "pkg/batch.py": (
                "from pkg.core import save\n"
                "from pkg.errors import HardError\n"
                "def run_all(items):\n"
                "    failures = []\n"
                "    for item in items:\n"
                "        try:\n"
                "            save()\n"
                "        except HardError as error:\n"
                "            failures.append((item, error))\n"
                "    return failures\n"
            ),
        }))
        assert report.ok


# -- mutation 4: fault-site wiring --------------------------------------------


class TestFaultSiteWiring:
    def test_orphan_declared_site_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/faults.py"] = CLEAN_TREE["pkg/faults.py"].replace(
            "SITE_WORK = 'replay.work'\n",
            "SITE_WORK = 'replay.work'\nSITE_LOAD = 'checkpoint.load'\n",
        )
        report = run_flow(tmp_path, files)
        assert rules_of(report) == {"orphan-fault-site"}
        (finding,) = report.findings
        assert "checkpoint.load" in finding.message

    def test_hook_naming_an_undeclared_site_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/extra.py": (
                "from pkg import faults\n"
                "def shadow():\n"
                "    faults.fault_point('no.such.site')\n"
            ),
        }))
        assert rules_of(report) == {"unknown-fault-site"}

    def test_double_hooked_site_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/extra.py": (
                "from pkg import faults\n"
                "def second_hook():\n"
                "    faults.fault_point(faults.SITE_WORK)\n"
            ),
        }))
        assert rules_of(report) == {"duplicate-fault-site"}
        (finding,) = report.findings
        assert finding.fingerprint == "duplicate-fault-site:replay.work"

    def test_missing_faults_module_skips_the_check(self, tmp_path):
        files = {
            rel: src for rel, src in CLEAN_TREE.items()
            if rel not in ("pkg/faults.py", "pkg/core.py")
        }
        files["pkg/core.py"] = (
            "from pkg.errors import FlakyError, HardError\n"
            "def risky():\n"
            "    raise FlakyError('flaky')\n"
            "def save():\n"
            "    raise HardError('hard')\n"
        )
        report = run_flow(tmp_path, files)
        assert report.ok


# -- mutation 5: CLI exit-code mapping ----------------------------------------


class TestCliExitCodes:
    def test_uncaught_escape_from_a_command_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/cli.py"] = CLEAN_TREE["pkg/cli.py"] + (
            "\n"
            "class StrayError(Exception):\n"
            "    pass\n"
            "\n"
            "def cmd_stray(args):\n"
            "    raise StrayError('unmapped')\n"
        )
        report = run_flow(tmp_path, files)
        assert rules_of(report) == {"unmapped-exit-code"}
        (finding,) = report.findings
        assert finding.fingerprint == (
            "unmapped-exit-code:cmd_stray:pkg.cli.StrayError"
        )

    def test_boundary_handler_with_magic_number_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/cli.py"] = CLEAN_TREE["pkg/cli.py"].replace(
            "        return EXIT_FATAL\n", "        return 9\n"
        )
        report = run_flow(tmp_path, files)
        assert "undocumented-exit-code" in rules_of(report)

    def test_missing_cli_module_skips_the_check(self, tmp_path):
        files = {
            rel: src for rel, src in CLEAN_TREE.items()
            if rel != "pkg/cli.py"
        }
        report = run_flow(tmp_path, files)
        assert report.ok


# -- mutation 6: worker pickle safety -----------------------------------------


class TestWorkerPickles:
    def test_lambda_submission_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/pool.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def run_all(items):\n"
                "    with ProcessPoolExecutor() as executor:\n"
                "        futures = [\n"
                "            executor.submit(lambda: item * 2)\n"
                "            for item in items\n"
                "        ]\n"
                "    return [f.result() for f in futures]\n"
            ),
        }))
        assert rules_of(report) == {"unpicklable-worker-capture"}

    def test_nested_function_submission_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/pool.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def run_all(items):\n"
                "    def work(x):\n"
                "        return x * 2\n"
                "    with ProcessPoolExecutor() as executor:\n"
                "        futures = [executor.submit(work, i) for i in items]\n"
                "    return [f.result() for f in futures]\n"
            ),
        }))
        assert rules_of(report) == {"unpicklable-worker-capture"}
        (finding,) = report.findings
        assert "closure" in finding.message

    def test_open_handle_argument_is_a_finding(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/pool.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def work(handle):\n"
                "    return handle\n"
                "def run_one(path):\n"
                "    log = open(path)\n"
                "    with ProcessPoolExecutor() as executor:\n"
                "        future = executor.submit(work, log)\n"
                "    return future.result()\n"
            ),
        }))
        assert rules_of(report) == {"unpicklable-worker-capture"}

    def test_module_level_callable_is_allowed(self, tmp_path):
        report = run_flow(tmp_path, mutate({
            "pkg/pool.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def work(x):\n"
                "    return x * 2\n"
                "def run_all(items):\n"
                "    with ProcessPoolExecutor() as executor:\n"
                "        futures = [executor.submit(work, i) for i in items]\n"
                "    return [f.result() for f in futures]\n"
            ),
        }))
        assert report.ok


# -- baseline ratchet ---------------------------------------------------------


class TestFaultcheckBaseline:
    VIOLATION = {
        "pkg/boundary.py": (
            "from pkg import faults\n"
            "def shield(fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except faults.InjectedKill:\n"
            "        return None\n"
        ),
    }

    def test_justified_entry_waives_the_finding(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json", entries={
            "swallowed-base-exception:pkg.boundary.shield:"
            "pkg.faults.InjectedKill": "sanctioned kill boundary",
        })
        report = run_flow(tmp_path, mutate(self.VIOLATION),
                          baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1

    def test_update_baseline_writes_gating_todo_entries(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json")
        report = run_flow(tmp_path, mutate(self.VIOLATION),
                          baseline=baseline, update_baseline=True)
        written = json.loads((tmp_path / "baseline.json").read_text())
        assert written["entries"][0]["justification"] == TODO_JUSTIFICATION
        # The TODO stub itself gates: the run is still not ok.
        assert not report.ok
        assert any(f.rule == "unjustified-baseline"
                   for f in report.findings)

    def test_fixed_violation_surfaces_a_stale_entry(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json", entries={
            "swallowed-base-exception:pkg.gone.shield:"
            "pkg.faults.InjectedKill": "was justified once",
        })
        report = run_flow(tmp_path, CLEAN_TREE, baseline=baseline)
        assert report.ok
        assert report.stale == [
            "swallowed-base-exception:pkg.gone.shield:"
            "pkg.faults.InjectedKill"
        ]


# -- the repository gates on itself -------------------------------------------


class TestRepoTip:
    def test_repo_tip_is_clean_under_its_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "faultcheck-baseline.json")
        check = FaultCheck(REPO_ROOT / "src", baseline=baseline)
        report = check.run()
        assert report.ok, [f.fingerprint for f in report.findings]
        assert not report.stale, report.stale

    def test_repo_baseline_entries_are_justified(self):
        baseline = Baseline.load(REPO_ROOT / "faultcheck-baseline.json")
        assert baseline.entries, "expected the known waived findings"
        assert not baseline.unjustified()


# -- CLI ----------------------------------------------------------------------


class TestFaultcheckCli:
    def test_findings_gate_with_exit_1_and_json(self, tmp_path, capsys):
        src = write_tree(tmp_path / "src", mutate({
            "pkg/boundary.py": (
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except BaseException:\n"
                "        return None\n"
            ),
        }))
        code = main([
            "faultcheck", "--src", str(src), "--package", "pkg",
            "--baseline", str(tmp_path / "baseline.json"),
            "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "faultcheck"
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "swallowed-base-exception"

    def test_clean_tree_exits_0_and_writes_report(self, tmp_path, capsys):
        src = write_tree(tmp_path / "src", CLEAN_TREE)
        report_path = tmp_path / "faultcheck-report.json"
        code = main([
            "faultcheck", "--src", str(src), "--package", "pkg",
            "--baseline", str(tmp_path / "baseline.json"),
            "--report", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faultcheck: no findings" in out
        payload = json.loads(report_path.read_text())
        assert payload["count"] == 0
        assert payload["stats"]["modules"] == len(CLEAN_TREE)

    def test_update_baseline_flag_writes_the_file(self, tmp_path, capsys):
        src = write_tree(tmp_path / "src", mutate({
            "pkg/boundary.py": (
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except BaseException:\n"
                "        return None\n"
            ),
        }))
        baseline_path = tmp_path / "baseline.json"
        code = main([
            "faultcheck", "--src", str(src), "--package", "pkg",
            "--baseline", str(baseline_path), "--update-baseline",
        ])
        assert code == 1  # TODO stubs still gate
        written = json.loads(baseline_path.read_text())
        assert written["entries"][0]["justification"] == TODO_JUSTIFICATION

    def test_check_umbrella_passes_on_repo_tip(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["check"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "== lint ==" in out
        assert "== archcheck ==" in out
        assert "== faultcheck ==" in out
        assert "== perfcheck ==" in out
        assert "4/4 gates clean" in out

    def test_check_umbrella_gates_on_any_failing_gate(self, tmp_path,
                                                      monkeypatch, capsys):
        # A fixture repo whose faultcheck fails but whose lint,
        # archcheck and perfcheck pass: the umbrella must still exit 1.
        src = write_tree(tmp_path / "src", mutate({
            "pkg/boundary.py": (
                "def shield(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except BaseException:\n"
                "        return None\n"
            ),
        }))
        (tmp_path / "archcontract.toml").write_text(
            "[project]\npackage = \"pkg\"\n"
            "[layers]\nall = []\n"
            "[modules]\npkg = \"all\"\n"
            + "".join(
                f'"pkg.{mod}" = "all"\n'
                for mod in ("boundary", "cli", "core", "errors", "faults")
            )
            + "[deadcode]\nignore = [\"*\"]\n",
            encoding="utf-8",
        )
        (tmp_path / "perfcontract.toml").write_text(
            "[project]\npackage = \"pkg\"\n"
            "[[entry]]\nfunction = \"pkg.core.risky\"\n"
            "max_loop_depth = 0\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        code = main([
            "check", "--src", str(src), "--package", "pkg",
            "--fault-baseline", str(tmp_path / "fault-baseline.json"),
            "--arch-baseline", str(tmp_path / "arch-baseline.json"),
            "--perf-baseline", str(tmp_path / "perf-baseline.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "swallowed-base-exception" in out
        assert "faultcheck: exit 1 (findings)" in out
        assert "perfcheck: exit 0 (clean)" in out
        assert "3/4 gates clean" in out

    def test_check_umbrella_reports_a_broken_gate_as_fatal(
        self, tmp_path, monkeypatch, capsys
    ):
        # A missing perf contract fails its own gate with exit 2 but
        # must not take down the other three analyzers.
        src = write_tree(tmp_path / "src", dict(CLEAN_TREE))
        (tmp_path / "archcontract.toml").write_text(
            "[project]\npackage = \"pkg\"\n"
            "[layers]\nall = []\n"
            "[modules]\npkg = \"all\"\n"
            + "".join(
                f'"pkg.{mod}" = "all"\n'
                for mod in ("cli", "core", "errors", "faults")
            )
            + "[deadcode]\nignore = [\"*\"]\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        code = main([
            "check", "--src", str(src), "--package", "pkg",
            "--fault-baseline", str(tmp_path / "fault-baseline.json"),
            "--arch-baseline", str(tmp_path / "arch-baseline.json"),
            "--perf-baseline", str(tmp_path / "perf-baseline.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "perfcheck: exit 2 (fatal)" in out
        assert "no performance contract" in out
        assert "3/4 gates clean" in out
