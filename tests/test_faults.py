"""Tests for the fault-injection subsystem and the chaos machinery.

One test (at least) per injection site kind, plus the resume-equality
sweeps: kill the campaign at every journal row, resume it, and require
the final report to be bit-identical to an uninjected reference.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    ConfigError,
    InjectedFaultError,
    TaskTimeoutError,
    TraceIntegrityError,
    WorkerCrashError,
)
from repro.sim import faults
from repro.sim.checkpoint import SweepProgress, TraceCheckpointStore
from repro.sim.experiment import ExperimentRunner
from repro.sim.faults import (
    FaultPlan,
    FaultSpec,
    InjectedKill,
    deterministic_fraction,
)
from repro.sim.resilience import RetryPolicy, run_guarded
from repro.sim.sweep import DesignSweep

GAME = "SWa"

#: The design point the targeted injections aim at (via ``match``); the
#: baseline suite is unguarded, so untargeted p=1 faults would be fatal.
TARGET = "CG-square/const/zorder/dec"


def make_sweep() -> DesignSweep:
    return DesignSweep(
        groupings=("FG-xshift2", "CG-square"),
        assignments=("const",),
        orders=("zorder",),
        decoupled=(False, True),
    )


def make_runner(tiny_config) -> ExperimentRunner:
    return ExperimentRunner(tiny_config, games=[GAME])


@pytest.fixture(scope="module")
def reference(tiny_config):
    """The uninjected serial report every injected campaign must match."""
    report = make_sweep().run(make_runner(tiny_config))
    assert not report.failures
    return report


def assert_rows_match(report, reference) -> None:
    assert [r.as_dict() for r in report.rows] == [
        r.as_dict() for r in reference.rows
    ]
    assert not report.failures


class TestDeterministicFraction:
    def test_range_and_determinism(self):
        draws = [deterministic_fraction(i, "site", "key") for i in range(50)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [
            deterministic_fraction(i, "site", "key") for i in range(50)
        ]

    def test_distinct_parts_distinct_draws(self):
        assert deterministic_fraction(1, "a") != deterministic_fraction(1, "b")


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="nowhere", kind=faults.KIND_KILL)

    def test_kind_must_fit_site(self):
        with pytest.raises(ConfigError):
            FaultSpec(site=faults.SITE_CHECKPOINT_SAVE, kind=faults.KIND_HANG)

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(
                site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
                probability=1.5,
            )

    def test_attempt_window(self):
        spec = FaultSpec(
            site=faults.SITE_WORKER, kind=faults.KIND_EXIT,
            first_attempt=2, fire_attempts=2,
        )
        assert [spec.window_contains(a) for a in (1, 2, 3, 4)] == [
            False, True, True, False,
        ]

    def test_unbounded_window(self):
        spec = FaultSpec(
            site=faults.SITE_WORKER, kind=faults.KIND_EXIT,
            fire_attempts=None,
        )
        assert spec.window_contains(1) and spec.window_contains(99)


class TestArming:
    def test_disarmed_fault_point_is_noop(self):
        assert faults.active_plan() is None
        assert faults.fault_point(faults.SITE_REPLAY, key="x") is None

    def test_armed_context_restores_previous(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        with faults.armed(outer):
            with faults.armed(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_armed_none_is_noop(self):
        with faults.armed(None):
            assert faults.active_plan() is None


class TestTrigger:
    def plan(self, spec: FaultSpec, seed: int = 0) -> FaultPlan:
        return FaultPlan(seed=seed, specs=(spec,))

    def test_transient_raises_retryable(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
        ))
        with pytest.raises(InjectedFaultError) as info:
            plan.trigger(faults.SITE_REPLAY, key="d/g")
        assert info.value.transient

    def test_budget_blowout_raises(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_BUDGET,
        ))
        with pytest.raises(BudgetExceededError):
            plan.trigger(faults.SITE_REPLAY, key="d/g")

    def test_kill_is_not_an_exception(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_KILL,
        ))
        with pytest.raises(InjectedKill) as info:
            plan.trigger(faults.SITE_JOURNAL_RECORD)
        # A simulated SIGKILL must never be absorbable by `except
        # Exception` boundaries.
        assert not isinstance(info.value, Exception)

    def test_data_kind_returned_and_recorded(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_CHECKPOINT_SAVE, kind=faults.KIND_TORN_WRITE,
        ))
        kind = plan.trigger(faults.SITE_CHECKPOINT_SAVE, key="k")
        assert kind == faults.KIND_TORN_WRITE
        assert [e.kind for e in plan.fired] == [faults.KIND_TORN_WRITE]

    def test_window_limits_auto_attempts(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
        ))
        with pytest.raises(InjectedFaultError):
            plan.trigger(faults.SITE_REPLAY, key="d/g")
        # Second call on the same key = attempt 2, outside the window.
        assert plan.trigger(faults.SITE_REPLAY, key="d/g") is None

    def test_match_filters_keys(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
            match="other",
        ))
        assert plan.trigger(faults.SITE_REPLAY, key="d/g") is None
        assert not plan.fired

    def test_zero_probability_never_fires(self):
        plan = self.plan(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
            probability=0.0,
        ))
        for key in ("a", "b", "c"):
            assert plan.trigger(faults.SITE_REPLAY, key=key) is None

    def test_decisions_are_plan_deterministic(self):
        spec = FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
            probability=0.5, fire_attempts=None,
        )
        outcomes = []
        for _ in range(2):
            plan = FaultPlan(seed=42, specs=(spec,))
            fired = []
            for key in map(str, range(20)):
                try:
                    plan.trigger(faults.SITE_REPLAY, key=key, attempt=1)
                except InjectedFaultError:
                    fired.append(key)
            outcomes.append(fired)
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 20  # p=0.5 actually splits

    def test_for_sites_filters_specs(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT),
            FaultSpec(
                site=faults.SITE_CHECKPOINT_LOAD, kind=faults.KIND_TRUNCATE,
            ),
        ))
        kept = plan.for_sites({faults.SITE_CHECKPOINT_LOAD})
        assert [s.site for s in kept.specs] == [faults.SITE_CHECKPOINT_LOAD]
        assert kept.seed == plan.seed


class TestCheckpointFaults:
    def test_torn_write_detected_on_load(self, tmp_path, tiny_trace):
        store = TraceCheckpointStore(tmp_path)
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_CHECKPOINT_SAVE, kind=faults.KIND_TORN_WRITE,
        ),))
        with faults.armed(plan):
            store.save("k", tiny_trace)
        assert plan.fired
        with pytest.raises(TraceIntegrityError):
            store.load("k")

    def test_truncated_load_raises_checkpoint_error(
        self, tmp_path, tiny_trace
    ):
        store = TraceCheckpointStore(tmp_path)
        store.save("k", tiny_trace)
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_CHECKPOINT_LOAD, kind=faults.KIND_TRUNCATE,
        ),))
        with faults.armed(plan), pytest.raises(CheckpointError):
            store.load("k")

    def test_corrupt_byte_fails_payload_hash(self, tmp_path, tiny_trace):
        store = TraceCheckpointStore(tmp_path)
        store.save("k", tiny_trace)
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_CHECKPOINT_LOAD, kind=faults.KIND_CORRUPT,
        ),))
        with faults.armed(plan), pytest.raises(
            TraceIntegrityError, match="hash mismatch"
        ):
            store.load("k")

    def test_corrupt_checkpoint_heals_by_rerender(self, tmp_path, tiny_config):
        store = TraceCheckpointStore(tmp_path)
        seeder = ExperimentRunner(
            tiny_config, games=[GAME], checkpoint_store=store
        )
        seeder.trace_for(GAME)
        assert seeder.renders_performed == 1

        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_CHECKPOINT_LOAD, kind=faults.KIND_TRUNCATE,
        ),))
        healer = ExperimentRunner(
            tiny_config, games=[GAME], checkpoint_store=store
        )
        with faults.armed(plan):
            healer.trace_for(GAME)
        assert healer.renders_performed == 1  # corrupt load = cache miss

        # The heal re-checkpointed, so the next run loads cleanly again.
        reader = ExperimentRunner(
            tiny_config, games=[GAME], checkpoint_store=store
        )
        reader.trace_for(GAME)
        assert reader.renders_performed == 0


class TestJournalFaults:
    ROW = {"speedup": 1.0}

    def test_partial_trailing_line_dropped_with_warning(self, tmp_path):
        progress = SweepProgress(tmp_path, campaign="c")
        progress.record("d1", dict(self.ROW))
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_PARTIAL_LINE,
        ),))
        with faults.armed(plan), pytest.raises(InjectedKill):
            progress.record("d2", dict(self.ROW))
        text = progress.path.read_text(encoding="utf-8")
        assert not text.endswith("\n")  # the crash left a torn tail
        with pytest.warns(RuntimeWarning, match="partial trailing line"):
            rows = progress.completed_rows()
        assert rows == {"d1": self.ROW}

    def test_kill_before_append_loses_only_that_row(self, tmp_path):
        progress = SweepProgress(tmp_path, campaign="c")
        progress.record("d1", dict(self.ROW))
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_KILL,
        ),))
        with faults.armed(plan), pytest.raises(InjectedKill):
            progress.record("d2", dict(self.ROW))
        assert progress.completed_rows() == {"d1": self.ROW}

    def test_malformed_middle_line_skipped_with_warning(self, tmp_path):
        progress = SweepProgress(tmp_path, campaign="c")
        progress.record("d1", dict(self.ROW))
        with open(progress.path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        progress.record("d2", dict(self.ROW))
        with pytest.warns(RuntimeWarning, match="malformed line 2"):
            rows = progress.completed_rows()
        assert set(rows) == {"d1", "d2"}


class TestSerialInjection:
    def test_transient_healed_by_retry(self, tiny_config, reference):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
            match=TARGET,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(
                make_runner(tiny_config),
                retry_policy=RetryPolicy(max_retries=1),
            )
        assert [e.kind for e in plan.fired] == [faults.KIND_TRANSIENT]
        assert_rows_match(report, reference)

    def test_transient_without_retry_becomes_failure_row(
        self, tiny_config, reference
    ):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_TRANSIENT,
            match=TARGET,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(make_runner(tiny_config))
        assert len(report.rows) == len(reference.rows) - 1
        (failure,) = report.failures
        assert failure.error_type == "InjectedFaultError"
        assert failure.design_point == TARGET
        assert failure.attempts == 1
        assert report.outcome == "partial"

    def test_budget_blowout_is_never_retried(self, tiny_config, reference):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_REPLAY, kind=faults.KIND_BUDGET,
            match=TARGET,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(
                make_runner(tiny_config),
                retry_policy=RetryPolicy(max_retries=3),
            )
        (failure,) = report.failures
        assert failure.error_type == "BudgetExceededError"
        assert failure.attempts == 1  # deterministic: one attempt only
        assert len(report.rows) == len(reference.rows) - 1


class TestKillAndResume:
    @pytest.mark.parametrize("row_index", [0, 1, 2, 3])
    def test_kill_at_every_journal_row_resumes_identically(
        self, tmp_path, tiny_config, reference, row_index
    ):
        """The flagship invariant: wherever the campaign dies, resuming
        it reproduces the uninjected report exactly."""
        work = tmp_path / f"kill-{row_index}"
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_KILL,
            first_attempt=row_index + 1,
        ),))
        with faults.armed(plan), pytest.raises(InjectedKill):
            make_sweep().run(make_runner(tiny_config), checkpoint_dir=work)
        resumed = make_sweep().run(
            make_runner(tiny_config), checkpoint_dir=work, resume=True
        )
        assert_rows_match(resumed, reference)
        expected = [r for r in reference.manifest.design_points_succeeded]
        assert resumed.resumed == expected[:row_index]

    def test_kill_mid_append_resumes_identically(
        self, tmp_path, tiny_config, reference
    ):
        work = tmp_path / "torn"
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_PARTIAL_LINE,
            first_attempt=2,
        ),))
        with faults.armed(plan), pytest.raises(InjectedKill):
            make_sweep().run(make_runner(tiny_config), checkpoint_dir=work)
        with pytest.warns(RuntimeWarning, match="partial trailing line"):
            resumed = make_sweep().run(
                make_runner(tiny_config), checkpoint_dir=work, resume=True
            )
        assert_rows_match(resumed, reference)
        assert len(resumed.resumed) == 1  # the torn second row recomputed

    def test_parallel_kill_keeps_journaled_rows(
        self, tmp_path, tiny_config, reference
    ):
        """Parallel rows are journaled as they assemble, so a campaign
        killed mid-flight loses nothing that already completed."""
        work = tmp_path / "parallel"
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_JOURNAL_RECORD, kind=faults.KIND_KILL,
            first_attempt=2,
        ),))
        with faults.armed(plan), pytest.raises(InjectedKill):
            make_sweep().run(
                make_runner(tiny_config), checkpoint_dir=work, jobs=2
            )
        resumed = make_sweep().run(
            make_runner(tiny_config), checkpoint_dir=work, resume=True,
            jobs=2,
        )
        assert_rows_match(resumed, reference)
        assert len(resumed.resumed) == 1


class TestWorkerRecovery:
    def test_worker_process_exit_heals(self, tiny_config, reference):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_WORKER, kind=faults.KIND_EXIT, match=TARGET,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(make_runner(tiny_config), jobs=2)
        assert_rows_match(report, reference)

    def test_worker_hang_past_deadline_heals(self, tiny_config, reference):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_WORKER, kind=faults.KIND_HANG, match=TARGET,
            seconds=5.0,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(
                make_runner(tiny_config), jobs=2, task_timeout_s=1.0
            )
        assert_rows_match(report, reference)

    def test_persistent_crasher_becomes_failure_row(
        self, tiny_config, reference
    ):
        plan = FaultPlan(specs=(FaultSpec(
            site=faults.SITE_WORKER, kind=faults.KIND_EXIT, match=TARGET,
            fire_attempts=None,
        ),))
        with faults.armed(plan):
            report = make_sweep().run(
                make_runner(tiny_config), jobs=2, max_task_attempts=2
            )
        (failure,) = report.failures
        assert failure.error_type == "WorkerCrashError"
        assert failure.design_point == TARGET
        assert failure.attempts == 2
        # The bystander design points are untouched by the crashes.
        surviving = [
            r.as_dict() for r in reference.rows
            if not (r.grouping == "CG-square" and r.decoupled)
        ]
        assert [r.as_dict() for r in report.rows] == surviving


class TestRetryBackoff:
    def test_zero_base_means_immediate(self):
        assert RetryPolicy(max_retries=2).delay_for(1, key="k") == 0.0

    def test_exponential_capped_and_jittered(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=3.0, jitter=0.5, seed=1,
        )
        for attempt, ceiling in ((1, 1.0), (2, 2.0), (3, 3.0), (4, 3.0)):
            delay = policy.delay_for(attempt, key="k")
            assert ceiling * 0.5 <= delay <= ceiling

    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(backoff_base_s=1.0, seed=7)
        assert policy.delay_for(2, key="a") == policy.delay_for(2, key="a")
        assert policy.delay_for(2, key="a") != policy.delay_for(2, key="b")

    def test_run_guarded_sleeps_the_policy_schedule(self, monkeypatch):
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.5, jitter=0.5, seed=3
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFaultError("flaky", transient=True)
            return "ok"

        result, failure = run_guarded(
            flaky, design_point="dp", game="g", policy=policy
        )
        assert (result, failure) == ("ok", None)
        assert slept == [
            policy.delay_for(1, key="dp/g"), policy.delay_for(2, key="dp/g"),
        ]


class TestChaosCampaign:
    def test_small_campaign_converges(self, tiny_config):
        from repro.sim.chaos import run_chaos

        report = run_chaos(
            trials=2, seed=5, jobs=2, config=tiny_config,
            task_timeout_s=2.0,
        )
        assert report.ok, [t.as_dict() for t in report.failed_trials]
        assert report.reference_rows == 4
        assert len(report.trials) == 2

    def test_campaign_is_seed_deterministic(self, tiny_config):
        from repro.sim.chaos import run_chaos

        def strip(payload):
            payload.pop("wall_time_s")
            for trial in payload["trials"]:
                trial.pop("wall_time_s")
            return payload

        first = strip(run_chaos(
            trials=2, seed=11, jobs=1, config=tiny_config
        ).as_dict())
        second = strip(run_chaos(
            trials=2, seed=11, jobs=1, config=tiny_config
        ).as_dict())
        assert first == second

    def test_sample_plan_deterministic_and_healable(self):
        from repro.sim.chaos import sample_plan

        plans = [sample_plan(9, jobs=2, hang_seconds=1.0) for _ in range(2)]
        assert plans[0].describe() == plans[1].describe()
        for spec in plans[0].specs:
            assert spec.first_attempt == 1 and spec.fire_attempts == 1

    def test_rejects_bad_arguments(self):
        from repro.sim.chaos import run_chaos

        with pytest.raises(ConfigError):
            run_chaos(trials=0)
        with pytest.raises(ConfigError):
            run_chaos(jobs=0)


class TestTimeoutErrorTyping:
    def test_worker_errors_are_transient(self):
        from repro.errors import is_transient

        assert is_transient(WorkerCrashError("x"))
        assert is_transient(TaskTimeoutError("x"))
