"""Tests for the Vertex Stage, Primitive Assembler and clipping."""

import pytest

from repro.config import GPUConfig
from repro.geometry.clipping import clip_primitive, cull_backface
from repro.geometry.mesh import DrawCommand, Mesh, Vertex
from repro.geometry.primitive_assembly import Primitive, PrimitiveAssembler
from repro.geometry.transform import orthographic
from repro.geometry.vec import Mat4, Vec2, Vec3, Vec4
from repro.geometry.vertex_stage import TransformedVertex, VertexStage
from repro.memory.hierarchy import MemoryHierarchy


def tri_mesh():
    vertices = [
        Vertex(Vec3(0, 0, 0), Vec2(0, 0)),
        Vertex(Vec3(10, 0, 0), Vec2(1, 0)),
        Vertex(Vec3(0, 10, 0), Vec2(0, 1)),
    ]
    return Mesh(vertices=vertices, indices=[0, 1, 2])


def make_primitive(positions, pid=0):
    vertices = tuple(
        TransformedVertex(
            clip_position=Vec4(*p), uv=Vec2(0, 0), color=Vec3(1, 1, 1)
        )
        for p in positions
    )
    from repro.geometry.mesh import ShaderProgram
    return Primitive(
        primitive_id=pid, vertices=vertices, texture_id=0,
        shader=ShaderProgram(),
    )


class TestVertexStage:
    def test_output_follows_index_order(self):
        stage = VertexStage()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=0)
        out = stage.run(draw, Mat4.identity(), Mat4.identity())
        assert len(out) == 3
        assert out[0].clip_position.x == 0.0
        assert out[1].clip_position.x == 10.0

    def test_transform_applied(self):
        stage = VertexStage()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=0)
        proj = orthographic(0, 10, 0, 10)
        out = stage.run(draw, Mat4.identity(), proj)
        assert out[1].clip_position.x == pytest.approx(1.0)

    def test_shared_vertices_transformed_once(self):
        stage = VertexStage()
        mesh = Mesh(
            vertices=tri_mesh().vertices, indices=[0, 1, 2, 0, 2, 1]
        )
        draw = DrawCommand(mesh=mesh, texture_id=0)
        stage.run(draw, Mat4.identity(), Mat4.identity())
        assert stage.vertices_processed == 3

    def test_vertex_fetches_go_through_cache(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        hierarchy = MemoryHierarchy(config)
        stage = VertexStage(hierarchy)
        draw = DrawCommand(mesh=tri_mesh(), texture_id=0)
        stage.run(draw, Mat4.identity(), Mat4.identity())
        assert hierarchy.vertex_cache.stats.accesses == 3

    def test_attributes_passed_through(self):
        stage = VertexStage()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=0)
        out = stage.run(draw, Mat4.identity(), Mat4.identity())
        assert out[2].uv == Vec2(0, 1)


class TestPrimitiveAssembler:
    def test_ids_are_global_and_in_program_order(self):
        assembler = PrimitiveAssembler()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=5)
        stage = VertexStage()
        transformed = stage.run(draw, Mat4.identity(), Mat4.identity())
        prims = list(assembler.assemble(draw, transformed))
        prims += list(assembler.assemble(draw, transformed))
        assert [p.primitive_id for p in prims] == [0, 1]

    def test_render_state_captured(self):
        assembler = PrimitiveAssembler()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=5, blend=True,
                           depth_write=False)
        transformed = VertexStage().run(draw, Mat4.identity(), Mat4.identity())
        prim = next(assembler.assemble(draw, transformed))
        assert prim.texture_id == 5
        assert prim.blend is True
        assert prim.depth_write is False

    def test_mismatched_stream_rejected(self):
        assembler = PrimitiveAssembler()
        draw = DrawCommand(mesh=tri_mesh(), texture_id=0)
        with pytest.raises(ValueError):
            list(assembler.assemble(draw, []))

    def test_primitive_requires_three_vertices(self):
        with pytest.raises(ValueError):
            make_primitive([(0, 0, 0, 1), (1, 0, 0, 1)])


class TestClipping:
    def test_fully_inside_passes_unchanged(self):
        prim = make_primitive(
            [(-0.5, -0.5, 0, 1), (0.5, -0.5, 0, 1), (0, 0.5, 0, 1)]
        )
        out = clip_primitive(prim)
        assert len(out) == 1
        assert out[0].vertices == prim.vertices

    def test_fully_outside_right_rejected(self):
        prim = make_primitive(
            [(2, 0, 0, 1), (3, 0, 0, 1), (2, 1, 0, 1)]
        )
        assert clip_primitive(prim) == []

    def test_fully_behind_camera_rejected(self):
        prim = make_primitive(
            [(0, 0, 0, -1), (1, 0, 0, -2), (0, 1, 0, -1)]
        )
        assert clip_primitive(prim) == []

    def test_near_plane_split_produces_triangles(self):
        # One vertex behind the camera: clipping yields a quad -> 2 tris.
        prim = make_primitive(
            [(0, 0, 0, 2), (1, 0, 0, 2), (0, 1, 0, -1)]
        )
        out = clip_primitive(prim)
        assert len(out) == 2
        for clipped in out:
            for vertex in clipped.vertices:
                assert vertex.clip_position.w > 0

    def test_clipped_keep_primitive_id(self):
        prim = make_primitive(
            [(0, 0, 0, 2), (1, 0, 0, 2), (0, 1, 0, -1)], pid=77
        )
        assert all(p.primitive_id == 77 for p in clip_primitive(prim))

    def test_degenerate_culled(self):
        prim = make_primitive(
            [(0, 0, 0, 1), (1, 1, 0, 1), (2, 2, 0, 1)]
        )
        assert cull_backface(prim) is True

    def test_backface_kept_by_default(self):
        ccw = make_primitive(
            [(0, 0, 0, 1), (1, 0, 0, 1), (0, 1, 0, 1)]
        )
        cw = make_primitive(
            [(0, 0, 0, 1), (0, 1, 0, 1), (1, 0, 0, 1)]
        )
        assert cull_backface(ccw) is False
        assert cull_backface(cw) is False

    def test_backface_culled_when_requested(self):
        cw = make_primitive(
            [(0, 0, 0, 1), (0, 1, 0, 1), (1, 0, 0, 1)]
        )
        assert cull_backface(cw, cull_back=True) is True
