"""Tests for the texture/vertex/tile + L2 + DRAM memory hierarchy."""

import pytest

from repro.config import GPUConfig
from repro.memory.hierarchy import MemoryHierarchy, ServiceLevel


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(GPUConfig(screen_width=128, screen_height=64))


class TestTextureAccessPath:
    def test_cold_access_goes_to_dram(self, hierarchy):
        result = hierarchy.texture_access(0, 100)
        assert result.level is ServiceLevel.DRAM
        assert not result.l1_hit

    def test_warm_access_hits_l1(self, hierarchy):
        hierarchy.texture_access(0, 100)
        result = hierarchy.texture_access(0, 100)
        assert result.level is ServiceLevel.L1
        assert result.latency == hierarchy.config.texture_cache.hit_latency

    def test_l1s_are_private_per_core(self, hierarchy):
        hierarchy.texture_access(0, 100)
        result = hierarchy.texture_access(1, 100)
        # Other core's L1 misses, but the shared L2 now holds the line.
        assert result.level is ServiceLevel.L2

    def test_l2_shared_across_cores(self, hierarchy):
        hierarchy.texture_access(0, 100)
        before = hierarchy.dram_accesses
        hierarchy.texture_access(3, 100)
        assert hierarchy.dram_accesses == before

    def test_latency_accumulates_down_the_hierarchy(self, hierarchy):
        cold = hierarchy.texture_access(0, 7)
        l1 = hierarchy.config.texture_cache.hit_latency
        l2 = hierarchy.config.l2_cache.hit_latency
        assert cold.latency >= l1 + l2 + hierarchy.config.dram.min_latency

    def test_l2_hit_latency(self, hierarchy):
        hierarchy.texture_access(0, 9)
        result = hierarchy.texture_access(1, 9)
        expected = (
            hierarchy.config.texture_cache.hit_latency
            + hierarchy.config.l2_cache.hit_latency
        )
        assert result.latency == expected


class TestTrafficClasses:
    def test_vertex_access_counts_in_l2(self, hierarchy):
        before = hierarchy.l2_accesses
        hierarchy.vertex_access(42)
        assert hierarchy.l2_accesses == before + 1

    def test_tile_access_counts_in_l2(self, hierarchy):
        before = hierarchy.l2_accesses
        hierarchy.tile_access(43)
        assert hierarchy.l2_accesses == before + 1

    def test_l1_hit_does_not_touch_l2(self, hierarchy):
        hierarchy.texture_access(0, 100)
        before = hierarchy.l2_accesses
        hierarchy.texture_access(0, 100)
        assert hierarchy.l2_accesses == before

    def test_vertex_cache_filters_repeats(self, hierarchy):
        hierarchy.vertex_access(42)
        before = hierarchy.l2_accesses
        hierarchy.vertex_access(42)
        assert hierarchy.l2_accesses == before


class TestStatsAndReplication:
    def test_texture_l1_stats_aggregate(self, hierarchy):
        hierarchy.texture_access(0, 1)
        hierarchy.texture_access(1, 1)
        hierarchy.texture_access(0, 1)
        stats = hierarchy.texture_l1_stats()
        assert stats.accesses == 3
        assert stats.hits == 1

    def test_replication_factor_one_when_disjoint(self, hierarchy):
        hierarchy.texture_access(0, 1)
        hierarchy.texture_access(1, 2)
        assert hierarchy.replication_factor() == pytest.approx(1.0)

    def test_replication_factor_counts_copies(self, hierarchy):
        for core in range(4):
            hierarchy.texture_access(core, 1)
        assert hierarchy.replication_factor() == pytest.approx(4.0)

    def test_replication_factor_empty(self, hierarchy):
        assert hierarchy.replication_factor() == 1.0

    def test_reset_clears_everything(self, hierarchy):
        hierarchy.texture_access(0, 1)
        hierarchy.vertex_access(2)
        hierarchy.tile_access(3)
        hierarchy.reset()
        assert hierarchy.l2_accesses == 0
        assert hierarchy.dram_accesses == 0
        assert hierarchy.texture_l1_stats().accesses == 0

    def test_l2_misses_counted(self, hierarchy):
        hierarchy.texture_access(0, 500)
        assert hierarchy.l2_misses == 1
        hierarchy.texture_access(1, 500)
        assert hierarchy.l2_misses == 1


class TestUpperBoundConfiguration:
    def test_single_big_l1(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        hierarchy = MemoryHierarchy(config.with_upper_bound_cache())
        assert len(hierarchy.texture_l1s) == 1
        assert (
            hierarchy.texture_l1s[0].config.size_bytes
            == 4 * config.texture_cache.size_bytes
        )

    def test_no_replication_possible(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        hierarchy = MemoryHierarchy(config.with_upper_bound_cache())
        for line in range(10):
            hierarchy.texture_access(0, line)
        assert hierarchy.replication_factor() == 1.0
