"""End-to-end integration tests: the paper's headline claims in miniature.

These exercise the whole stack — workload generation, geometry, tiling,
rasterization, cache replay, timing, energy — on one real suite game at
a reduced screen size, and assert the *directions* the paper reports.
"""

import pytest

from repro.stats import per_tile_imbalance
from repro.core.dtexl import (
    BASELINE,
    DTEXL_BEST,
    FIG8_MAPPING_NAMES,
    PAPER_CONFIGURATIONS,
)
from repro.sim.replay import TraceReplayer


@pytest.fixture(scope="module")
def replayer(small_config):
    return TraceReplayer(small_config)


@pytest.fixture(scope="module")
def results(replayer, small_game_trace):
    """Replay the key design points once for all assertions below."""
    names = [
        "CG-square-coupled", "FG-xshift2-decoupled",
        "Zorder-const", "HLB-flp2", "Sorder-const", "upper-bound",
    ]
    out = {"baseline": replayer.run(small_game_trace, BASELINE)}
    for name in names:
        out[name] = replayer.run(small_game_trace, PAPER_CONFIGURATIONS[name])
    out["DTexL"] = replayer.run(small_game_trace, DTEXL_BEST)
    return out


class TestHeadlineClaims:
    def test_cg_cuts_l2_accesses_substantially(self, results):
        """Figure 11's core claim: CG-square slashes L2 accesses."""
        base = results["baseline"].l2_accesses
        cg = results["CG-square-coupled"].l2_accesses
        assert (base - cg) / base > 0.25

    def test_cg_alone_gives_no_speedup(self, results):
        """Figure 13: without decoupling, the caching win is offset."""
        ratio = results["baseline"].frame_cycles / results[
            "CG-square-coupled"
        ].frame_cycles
        assert ratio < 1.1

    def test_dtexl_outperforms_baseline(self, results):
        """Figure 17: DTexL (HLB-flp2, decoupled) is faster.  The full
        1.2x shows at suite scale (see benchmarks/); at this reduced
        screen the direction must still hold."""
        ratio = results["baseline"].frame_cycles / results["DTexL"].frame_cycles
        assert ratio > 1.0

    def test_dtexl_matches_fg_decoupled_time_with_fewer_l2(self, results):
        """Figure 17 + 16 together: DTexL is at least competitive with
        FG+decoupled on time while touching the L2 far less."""
        assert (
            results["DTexL"].frame_cycles
            < results["FG-xshift2-decoupled"].frame_cycles * 1.02
        )
        assert (
            results["DTexL"].l2_accesses
            < 0.85 * results["FG-xshift2-decoupled"].l2_accesses
        )

    def test_dtexl_saves_energy(self, results):
        """Figure 18: total GPU energy decreases."""
        assert (
            results["DTexL"].energy.total_mj
            < results["baseline"].energy.total_mj
        )

    def test_upper_bound_bounds_every_mapping(self, results):
        ub = results["upper-bound"].l2_accesses
        for name in ["Zorder-const", "HLB-flp2", "Sorder-const"]:
            assert ub < results[name].l2_accesses

    def test_mappings_close_most_of_the_gap(self, results):
        """Figure 16: shared-edge mappings close a large share of the
        baseline-to-upper-bound gap."""
        base = results["baseline"].l2_accesses
        ub = results["upper-bound"].l2_accesses
        best = results["HLB-flp2"].l2_accesses
        closed = (base - best) / (base - ub)
        assert closed > 0.4

    def test_l2_misses_mostly_unchanged(self, results):
        """§V-C1: quad mapping targets short-term reuse; DRAM traffic
        (L2 misses) stays in the same ballpark."""
        base = results["baseline"].l2_misses
        dtexl = results["DTexL"].l2_misses
        assert abs(base - dtexl) / base < 0.35

    def test_time_imbalance_cg_worse_than_fg(self, results):
        """Figure 14: per-tile SC execution-time deviation."""
        fg = per_tile_imbalance(results["baseline"].timing.per_tile_sc_cycles)
        cg = per_tile_imbalance(
            results["CG-square-coupled"].timing.per_tile_sc_cycles
        )
        assert cg > fg

    def test_flipped_mapping_competitive_with_const(self, results):
        """Figure 16: flips beat const on the suite average; on a single
        small frame they must at least be within noise of it."""
        assert (
            results["HLB-flp2"].l2_accesses
            <= results["Zorder-const"].l2_accesses * 1.05
        )


class TestAllFig8MappingsRun:
    @pytest.mark.parametrize("name", FIG8_MAPPING_NAMES)
    def test_mapping_improves_on_baseline(
        self, replayer, small_game_trace, results, name
    ):
        result = replayer.run(small_game_trace, PAPER_CONFIGURATIONS[name])
        assert result.l2_accesses < results["baseline"].l2_accesses
        assert result.total_quads == results["baseline"].total_quads
