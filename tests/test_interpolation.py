"""Tests for barycentric and perspective-correct interpolation."""

import pytest

from repro.geometry.mesh import ShaderProgram
from repro.geometry.primitive_assembly import Primitive
from repro.geometry.vec import Vec2, Vec3, Vec4
from repro.geometry.vertex_stage import TransformedVertex
from repro.raster.interpolation import (
    barycentric,
    interpolate_color,
    interpolate_depth,
    interpolate_uv,
)
from repro.raster.setup import setup_primitive


def screen_triangle(ws=(1.0, 1.0, 1.0)):
    """NDC triangle covering the left half of a 100x100 screen."""
    data = [
        ((-1, 1, 0), (0.0, 0.0), (1, 0, 0)),
        ((1, 1, 0), (1.0, 0.0), (0, 1, 0)),
        ((-1, -1, 0), (0.0, 1.0), (0, 0, 1)),
    ]
    vertices = tuple(
        TransformedVertex(
            clip_position=Vec4(x * w, y * w, z * w, w),
            uv=Vec2(*uv),
            color=Vec3(*color),
        )
        for ((x, y, z), uv, color), w in zip(data, ws)
    )
    prim = Primitive(
        primitive_id=0, vertices=vertices, texture_id=0,
        shader=ShaderProgram(),
    )
    return setup_primitive(prim, 100, 100)


class TestBarycentric:
    def test_weights_sum_to_one_everywhere(self):
        tri = screen_triangle()
        for point in [(10, 10), (50, 50), (200, -50)]:
            weights = barycentric(tri, *point)
            assert sum(weights) == pytest.approx(1.0)

    def test_vertices_have_unit_weight(self):
        tri = screen_triangle()
        w = barycentric(tri, 0.0, 0.0)
        assert w[0] == pytest.approx(1.0)
        w = barycentric(tri, 100.0, 0.0)
        assert w[1] == pytest.approx(1.0)

    def test_outside_point_has_negative_weight(self):
        tri = screen_triangle()
        weights = barycentric(tri, 90.0, 90.0)
        assert min(weights) < 0.0


class TestAffineInterpolation:
    def test_depth_linear_in_screen_space(self):
        tri = screen_triangle()
        mid = barycentric(tri, 50.0, 0.0)
        assert interpolate_depth(tri, mid) == pytest.approx(0.5)

    def test_uv_affine_when_w_equal(self):
        tri = screen_triangle()
        mid = barycentric(tri, 50.0, 0.0)
        u, v = interpolate_uv(tri, mid)
        assert u == pytest.approx(0.5)
        assert v == pytest.approx(0.0)

    def test_color_at_vertex(self):
        tri = screen_triangle()
        w = barycentric(tri, 0.0, 100.0)
        assert interpolate_color(tri, w) == pytest.approx((0, 0, 1))


class TestPerspectiveCorrection:
    def test_uv_biased_towards_near_vertex(self):
        """With w=(1, 3): the screen midpoint must sample u < 0.5 —
        perspective pulls texture coordinates towards the nearer vertex."""
        tri = screen_triangle(ws=(1.0, 3.0, 1.0))
        mid = barycentric(tri, 50.0, 0.0)
        u, _ = interpolate_uv(tri, mid)
        assert u < 0.5

    def test_exact_hyperbolic_midpoint(self):
        """u at the screen midpoint of an edge with w=(1, 3) is 1/4:
        u = (0/1 + 1/3)/(1/1 + 1/3) * ... analytic = (1/3)/(4/3)."""
        tri = screen_triangle(ws=(1.0, 3.0, 1.0))
        mid = barycentric(tri, 50.0, 0.0)
        u, _ = interpolate_uv(tri, mid)
        assert u == pytest.approx(0.25)
