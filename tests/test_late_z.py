"""Tests for the Late-Z path (paper §II-A)."""

import pytest

from repro.config import GPUConfig
from repro.geometry.mesh import ShaderProgram
from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer
from repro.raster.rasterizer import Rasterizer
from repro.raster.setup import setup_primitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.texture import Texture

from tests.test_rasterizer import full_screen, ndc_primitive


@pytest.fixture
def config():
    return GPUConfig(screen_width=64, screen_height=64)


@pytest.fixture
def texture():
    return Texture(0, 128, 128, base_address=1 << 28)


def rasterize(config, texture, primitives, with_color=False):
    rasterizer = Rasterizer(config, {0: texture})
    zbuffer = ZBuffer(config.tile_size)
    color_buffer = ColorBuffer(config.tile_size) if with_color else None
    blender = BlendingUnit() if with_color else None
    screen = [
        setup_primitive(p, config.screen_width, config.screen_height)
        for p in primitives
    ]
    quads = rasterizer.rasterize_tile(
        (0, 0), screen, zbuffer, color_buffer, blender
    )
    return quads, rasterizer, color_buffer


def late_z_screen(pid=0, depth=0.0):
    prims = full_screen(pid=pid, depth=depth)
    return [
        type(p)(
            primitive_id=p.primitive_id, vertices=p.vertices,
            texture_id=p.texture_id, shader=p.shader,
            depth_write=p.depth_write, blend=p.blend, late_z=True,
        )
        for p in prims
    ]


class TestLateZShading:
    def test_occluded_late_z_fragments_still_shaded(self, config, texture):
        """Early-Z would cull the far layer; Late-Z must shade it."""
        near = full_screen(pid=0, depth=-0.5)
        far_late = late_z_screen(pid=1, depth=0.5)
        quads, rasterizer, _ = rasterize(config, texture, near + far_late)
        assert {q.primitive_id for q in quads} == {0, 1}
        assert rasterizer.pixels_shaded == 2 * config.tile_size ** 2

    def test_early_z_still_culls_non_late_draws(self, config, texture):
        near = full_screen(pid=0, depth=-0.5)
        far = full_screen(pid=1, depth=0.5)
        quads, _, _ = rasterize(config, texture, near + far)
        assert {q.primitive_id for q in quads} == {0}

    def test_late_z_still_updates_depth_for_later_draws(self, config, texture):
        """A Late-Z near layer must occlude a later far Early-Z layer."""
        near_late = late_z_screen(pid=0, depth=-0.5)
        far = full_screen(pid=1, depth=0.5)
        quads, _, _ = rasterize(config, texture, near_late + far)
        assert {q.primitive_id for q in quads} == {0}

    def test_late_z_occluded_does_not_write_color(self, config, texture):
        """Shaded-but-occluded Late-Z fragments never reach Blending."""
        red = full_screen(pid=0, depth=-0.5)
        for p in red:
            for v in p.vertices:
                pass  # colors default to white; track via blend counters
        blue_late = late_z_screen(pid=1, depth=0.5)
        _, _, color = rasterize(
            config, texture, red + blue_late, with_color=True
        )
        # Both layers shaded, but only the first wrote pixels: 4096 writes.
        assert color is not None

    def test_blend_counter_excludes_occluded_late_z(self, config, texture):
        near = full_screen(pid=0, depth=-0.5)
        far_late = late_z_screen(pid=1, depth=0.5)
        rasterizer = Rasterizer(config, {0: texture})
        zbuffer = ZBuffer(config.tile_size)
        color_buffer = ColorBuffer(config.tile_size)
        blender = BlendingUnit()
        screen = [
            setup_primitive(p, config.screen_width, config.screen_height)
            for p in near + far_late
        ]
        rasterizer.rasterize_tile((0, 0), screen, zbuffer, color_buffer, blender)
        # Only the visible (near) layer's pixels reached the blender.
        assert blender.pixels_written == config.tile_size ** 2
        # But both layers' pixels were shaded (cost accounted).
        assert rasterizer.pixels_shaded == 2 * config.tile_size ** 2


class TestLateZPropagation:
    def test_draw_command_flag_reaches_primitive(self):
        from repro.geometry.mesh import DrawCommand, Mesh, Vertex
        from repro.geometry.primitive_assembly import PrimitiveAssembler
        from repro.geometry.vec import Mat4, Vec2, Vec3
        from repro.geometry.vertex_stage import VertexStage

        mesh = Mesh(
            vertices=[
                Vertex(Vec3(0, 0, 0), Vec2(0, 0)),
                Vertex(Vec3(1, 0, 0), Vec2(1, 0)),
                Vertex(Vec3(0, 1, 0), Vec2(0, 1)),
            ],
            indices=[0, 1, 2],
        )
        draw = DrawCommand(mesh=mesh, texture_id=0, late_z=True)
        transformed = VertexStage().run(draw, Mat4.identity(), Mat4.identity())
        prim = next(PrimitiveAssembler().assemble(draw, transformed))
        assert prim.late_z is True

    def test_clipper_preserves_late_z(self):
        from repro.geometry.clipping import clip_primitive
        from tests.test_geometry_pipeline import make_primitive

        prim = make_primitive([(0, 0, 0, 2), (1, 0, 0, 2), (0, 1, 0, -1)])
        late = type(prim)(
            primitive_id=prim.primitive_id, vertices=prim.vertices,
            texture_id=0, shader=prim.shader, late_z=True,
        )
        assert all(p.late_z for p in clip_primitive(late))
