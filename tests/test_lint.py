"""The ``replint`` static pass: rules, scoping, suppressions, CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint import (
    ALL_RULES,
    LintEngine,
    RULES_BY_ID,
    TIMING_CRITICAL_PACKAGES,
    format_json,
    format_text,
    lint_paths,
    rule_ids,
)
from repro.cli import main

#: A module path inside a timing-critical package.
SIM_PATH = "src/repro/sim/fake_module.py"
#: A module path outside every timing-critical package.
TABLE_PATH = "src/repro/analysis/fake_tables.py"

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def rules_in(source: str, path: str = SIM_PATH) -> list:
    """Rule ids replint reports for ``source`` pretending it lives at ``path``."""
    return [f.rule for f in LintEngine().lint_source(source, path)]


# -- individual rules ---------------------------------------------------------


class TestWallClock:
    def test_direct_call_flagged(self):
        src = "import time\nstart = time.monotonic()\n"
        assert rules_in(src) == ["wall-clock"]

    def test_aliased_import_resolved(self):
        src = "from time import perf_counter as tick\nx = tick()\n"
        assert rules_in(src) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rules_in(src) == ["wall-clock"]

    def test_not_flagged_outside_timing_critical_packages(self):
        src = "import time\nstart = time.monotonic()\n"
        assert rules_in(src, TABLE_PATH) == []

    def test_cycle_model_arithmetic_is_clean(self):
        src = "cycles = busy + stall\n"
        assert rules_in(src) == []


class TestUnseededRandom:
    def test_global_rng_flagged(self):
        src = "import random\nx = random.randint(0, 7)\n"
        assert rules_in(src) == ["unseeded-random"]

    def test_global_seed_flagged(self):
        src = "import random\nrandom.seed(13)\n"
        assert rules_in(src) == ["unseeded-random"]

    def test_seeded_instance_is_clean(self):
        src = "import random\nrng = random.Random(7)\nx = rng.randint(0, 7)\n"
        assert rules_in(src) == []

    def test_numpy_legacy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_in(src) == ["unseeded-random"]

    def test_numpy_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_in(src) == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rules_in(src) == ["unordered-iteration"]

    def test_for_over_set_call_flagged(self):
        src = "for line in set(lines):\n    touch(line)\n"
        assert rules_in(src) == ["unordered-iteration"]

    def test_comprehension_over_set_flagged(self):
        src = "out = [f(x) for x in set(lines)]\n"
        assert rules_in(src) == ["unordered-iteration"]

    def test_order_sensitive_consumer_flagged(self):
        src = "stream = list(a.union(b))\n"
        assert rules_in(src) == ["unordered-iteration"]

    def test_sorted_set_is_clean(self):
        src = "for line in sorted(set(lines)):\n    touch(line)\n"
        assert rules_in(src) == []

    def test_not_flagged_outside_timing_critical_packages(self):
        src = "for x in {1, 2}:\n    print(x)\n"
        assert rules_in(src, TABLE_PATH) == []


class TestFloatEquality:
    def test_nonzero_literal_flagged_everywhere(self):
        src = "ok = speedup == 1.5\n"
        assert rules_in(src) == ["float-equality"]
        assert rules_in(src, TABLE_PATH) == ["float-equality"]

    def test_negative_literal_flagged(self):
        src = "bad = delta != -2.5\n"
        assert rules_in(src) == ["float-equality"]

    def test_zero_degenerate_guard_is_clean(self):
        src = "if area == 0.0:\n    return None\n"
        assert rules_in(src) == []

    def test_integer_comparison_is_clean(self):
        src = "done = cycles == 128\n"
        assert rules_in(src) == []


class TestBareAssert:
    def test_assert_flagged(self):
        src = "def f(n):\n    assert n > 0, 'bad'\n"
        assert rules_in(src) == ["bare-assert"]

    def test_raise_from_taxonomy_is_clean(self):
        src = (
            "from repro.errors import ConfigError\n"
            "def f(n):\n"
            "    if n <= 0:\n"
            "        raise ConfigError('bad')\n"
        )
        assert rules_in(src) == []


class TestConfigMutation:
    def test_attribute_assignment_flagged(self):
        src = "config.num_shader_cores = 8\n"
        assert rules_in(src) == ["config-mutation"]

    def test_augmented_assignment_flagged(self):
        src = "design.l1_size_kib *= 4\n"
        assert rules_in(src) == ["config-mutation"]

    def test_setattr_flagged(self):
        src = "object.__setattr__(config, 'decoupled', True)\n"
        assert rules_in(src) == ["config-mutation"]

    def test_dataclasses_replace_is_clean(self):
        src = (
            "import dataclasses\n"
            "bigger = dataclasses.replace(config, num_shader_cores=8)\n"
        )
        assert rules_in(src) == []


# -- suppressions -------------------------------------------------------------


class TestSuppressions:
    def test_justified_suppression_silences_the_rule(self):
        src = (
            "import time\n"
            "start = time.monotonic()  "
            "# replint: disable=wall-clock -- wall time for the manifest\n"
        )
        assert rules_in(src) == []

    def test_unjustified_suppression_is_itself_a_finding(self):
        src = (
            "import time\n"
            "start = time.monotonic()  # replint: disable=wall-clock\n"
        )
        assert sorted(rules_in(src)) == [
            "unjustified-suppression", "wall-clock",
        ]

    def test_disable_all(self):
        src = (
            "for x in {1, 2}:  # replint: disable=all -- test scaffolding\n"
            "    assert x\n"
        )
        findings = LintEngine().lint_source(src, SIM_PATH)
        assert [f.rule for f in findings] == ["bare-assert"]
        assert findings[0].line == 2

    def test_unused_suppression_is_a_finding(self):
        src = (
            "cycles = busy + stall  "
            "# replint: disable=wall-clock -- no longer needed\n"
        )
        findings = LintEngine().lint_source(src, SIM_PATH)
        assert [(f.rule, f.line) for f in findings] == [
            ("unused-suppression", 1)
        ]

    def test_unused_disable_all_is_a_finding(self):
        src = "x = 1  # replint: disable=all -- scaffolding\n"
        assert rules_in(src) == ["unused-suppression"]

    def test_unknown_rule_in_suppression_is_a_finding(self):
        src = (
            "import time\n"
            "t = time.monotonic()  "
            "# replint: disable=wallclock -- typo'd rule id\n"
        )
        assert sorted(rules_in(src)) == [
            "unused-suppression", "wall-clock",
        ]

    def test_inactive_rule_suppression_not_reported_unused(self):
        # wall-clock is timing-only; outside timing-critical packages the
        # rule never runs, so the waiver may be load-bearing elsewhere
        # (e.g. a docstring example) and must not be flagged.
        src = (
            "import time\n"
            "t = time.monotonic()  "
            "# replint: disable=wall-clock -- doc example\n"
        )
        assert rules_in(src, TABLE_PATH) == []

    def test_deselected_rule_suppression_not_reported_unused(self):
        src = (
            "import time\n"
            "t = time.monotonic()  "
            "# replint: disable=wall-clock -- manifest wall time\n"
        )
        engine = LintEngine(select=["bare-assert"])
        assert engine.lint_source(src, SIM_PATH) == []

    def test_used_suppression_not_reported_unused(self):
        src = (
            "import time\n"
            "t = time.monotonic()  "
            "# replint: disable=wall-clock -- manifest wall time\n"
        )
        assert rules_in(src) == []

    def test_suppression_only_covers_its_own_line(self):
        src = (
            "import time\n"
            "a = time.monotonic()  # replint: disable=wall-clock -- ok here\n"
            "b = time.monotonic()\n"
        )
        findings = LintEngine().lint_source(src, SIM_PATH)
        assert [(f.rule, f.line) for f in findings] == [("wall-clock", 3)]


# -- engine: scoping, selection, robustness -----------------------------------


class TestEngine:
    def test_parse_error_is_a_finding_not_a_crash(self):
        findings = LintEngine().lint_source("def broken(:\n", SIM_PATH)
        assert [f.rule for f in findings] == ["parse-error"]

    def test_select_restricts_rules(self):
        src = "import time\nstart = time.monotonic()\nassert start\n"
        engine = LintEngine(select=["bare-assert"])
        assert [f.rule for f in engine.lint_source(src, SIM_PATH)] == [
            "bare-assert"
        ]

    def test_registry_is_consistent(self):
        assert rule_ids() == {r.rule_id for r in ALL_RULES}
        assert set(RULES_BY_ID) == rule_ids()
        assert {"sim", "raster", "memory", "shader"} <= set(
            TIMING_CRITICAL_PACKAGES
        )

    def test_findings_sorted_and_serializable(self):
        src = "assert a\nx = b == 1.5\n"
        findings = LintEngine().lint_source(src, SIM_PATH)
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        payload = json.loads(format_json(findings))
        assert payload["count"] == len(findings) == 2
        assert {row["rule"] for row in payload["findings"]} == {
            "bare-assert", "float-equality",
        }
        text = format_text(findings)
        assert "replint: 2 findings" in text
        assert f"{SIM_PATH}:1:0: bare-assert" in text

    def test_discovery_skips_pycache(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import time\ntime.time()\n")
        assert LintEngine.discover([tmp_path]) == [tmp_path / "good.py"]


# -- the gate itself ----------------------------------------------------------


class TestRealTree:
    def test_src_tree_lints_clean(self):
        """The acceptance gate: the shipped tree carries zero findings."""
        findings = lint_paths([REPO_SRC])
        assert findings == [], format_text(findings)

    def test_seeded_bad_module_is_caught(self, tmp_path):
        """A hazard dropped into a sim/ package cannot slip through."""
        bad_dir = tmp_path / "sim"
        bad_dir.mkdir()
        bad = bad_dir / "bad.py"
        bad.write_text(
            "import random\n"
            "import time\n"
            "def jitter(config):\n"
            "    config.frequency_mhz = 600\n"
            "    assert config.frequency_mhz\n"
            "    for core in {1, 2, 3}:\n"
            "        if time.monotonic() == 1.5:\n"
            "            return random.random()\n"
        )
        found = {f.rule for f in lint_paths([tmp_path])}
        assert found == {
            "wall-clock", "unseeded-random", "unordered-iteration",
            "float-equality", "bare-assert", "config-mutation",
        }


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(REPO_SRC)]) == 0
        assert "replint: no findings" in capsys.readouterr().out

    def test_lint_bad_file_exits_one_with_json(self, tmp_path, capsys):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nx = time.time()\n")
        exit_code = main(["lint", str(tmp_path), "--format=json"])
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "wall-clock"
        assert payload["findings"][0]["line"] == 2

    def test_lint_select_unknown_rule_is_fatal(self, capsys):
        assert main(["lint", str(REPO_SRC), "--select", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "unknown lint rule" in err and "wall-clock" in err

    def test_lint_select_restricts_cli_run(self, tmp_path):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nx = time.time()\n")
        assert main(["lint", str(tmp_path), "--select", "bare-assert"]) == 0
