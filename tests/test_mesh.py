"""Tests for meshes, shader programs, draw commands and scenes."""

import pytest

from repro.geometry.mesh import (
    VERTEX_STRIDE_BYTES,
    DrawCommand,
    Mesh,
    Scene,
    ShaderProgram,
    Vertex,
)
from repro.geometry.vec import Vec2, Vec3


def quad_mesh(base=0):
    vertices = [
        Vertex(Vec3(0, 0, 0), Vec2(0, 0)),
        Vertex(Vec3(1, 0, 0), Vec2(1, 0)),
        Vertex(Vec3(1, 1, 0), Vec2(1, 1)),
        Vertex(Vec3(0, 1, 0), Vec2(0, 1)),
    ]
    return Mesh(vertices=vertices, indices=[0, 1, 2, 0, 2, 3], base_address=base)


class TestMesh:
    def test_triangle_count(self):
        assert quad_mesh().num_triangles == 2

    def test_triangles_in_program_order(self):
        assert quad_mesh().triangles() == [(0, 1, 2), (0, 2, 3)]

    def test_vertex_addresses_use_stride(self):
        mesh = quad_mesh(base=1000)
        assert mesh.vertex_address(0) == 1000
        assert mesh.vertex_address(2) == 1000 + 2 * VERTEX_STRIDE_BYTES

    def test_rejects_non_multiple_of_three_indices(self):
        with pytest.raises(ValueError):
            Mesh(vertices=quad_mesh().vertices, indices=[0, 1])

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            Mesh(vertices=quad_mesh().vertices, indices=[0, 1, 9])

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Mesh(vertices=quad_mesh().vertices, indices=[0, 1, -1])

    def test_empty_mesh_allowed(self):
        mesh = Mesh(vertices=[], indices=[])
        assert mesh.num_triangles == 0


class TestShaderProgram:
    def test_defaults(self):
        shader = ShaderProgram()
        assert shader.alu_cycles >= 1
        assert shader.texture_samples >= 0

    def test_rejects_zero_alu(self):
        with pytest.raises(ValueError):
            ShaderProgram(alu_cycles=0)

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            ShaderProgram(texture_samples=-1)


class TestVertex:
    def test_default_color_is_white(self):
        v = Vertex(Vec3(0, 0, 0), Vec2(0, 0))
        assert v.color == Vec3(1.0, 1.0, 1.0)


class TestScene:
    def test_add_and_count(self):
        scene = Scene()
        scene.add(DrawCommand(mesh=quad_mesh(), texture_id=0))
        scene.add(DrawCommand(mesh=quad_mesh(), texture_id=1))
        assert scene.num_triangles == 4

    def test_texture_ids_unique_in_first_use_order(self):
        scene = Scene()
        for tid in [2, 0, 2, 1, 0]:
            scene.add(DrawCommand(mesh=quad_mesh(), texture_id=tid))
        assert scene.texture_ids() == [2, 0, 1]

    def test_draw_defaults(self):
        draw = DrawCommand(mesh=quad_mesh(), texture_id=0)
        assert draw.depth_write is True
        assert draw.blend is False
