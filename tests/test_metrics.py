"""Tests for the paper-metric helpers in repro.stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    geometric_mean,
    mean_deviation,
    per_tile_imbalance,
    per_tile_imbalance_distribution,
    percent_decrease,
    speedup,
    violin_summary,
)

positive = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestMeanDeviation:
    def test_uniform_is_zero(self):
        assert mean_deviation([5, 5, 5, 5]) == 0.0

    def test_known_value(self):
        # values 0, 10: mean 5, mad 5, normalized 1.0.
        assert mean_deviation([0, 10]) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert mean_deviation([]) == 0.0

    def test_all_zero_is_zero(self):
        assert mean_deviation([0, 0, 0]) == 0.0

    @given(st.lists(positive, min_size=1, max_size=20), positive)
    @settings(max_examples=50, deadline=None)
    def test_scale_invariant(self, values, k):
        scaled = [v * k for v in values]
        assert mean_deviation(scaled) == pytest.approx(
            mean_deviation(values), rel=1e-6
        )

    @given(st.lists(positive, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_and_bounded(self, values):
        dev = mean_deviation(values)
        assert 0.0 <= dev <= 2.0  # MAD/mean is at most 2 for positives


class TestPerTileImbalance:
    def test_skips_idle_tiles(self):
        tiles = [[0, 0, 0, 0], [10, 0, 0, 0]]
        # Only the second tile counts: mean 2.5, mad (7.5+2.5*3)/4 = 3.75.
        assert per_tile_imbalance(tiles) == pytest.approx(1.5)

    def test_all_idle_is_zero(self):
        assert per_tile_imbalance([[0, 0], [0, 0]]) == 0.0

    def test_distribution_in_percent(self):
        dist = per_tile_imbalance_distribution([[0, 10], [5, 5]])
        assert dist == [pytest.approx(100.0), 0.0]


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * 0.999 <= gm <= max(values) * 1.001


class TestRatios:
    def test_percent_decrease(self):
        assert percent_decrease(200, 100) == pytest.approx(50.0)

    def test_percent_decrease_negative_when_worse(self):
        assert percent_decrease(100, 150) == pytest.approx(-50.0)

    def test_percent_decrease_zero_baseline(self):
        assert percent_decrease(0, 10) == 0.0

    def test_speedup(self):
        assert speedup(200, 100) == pytest.approx(2.0)

    def test_speedup_infinite_for_zero(self):
        assert speedup(100, 0) == float("inf")


class TestViolinSummary:
    def test_summary_fields(self):
        summary = violin_summary([1.0, 2.0, 3.0, 10.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0
        assert summary["median"] == 2.5
        assert summary["n"] == 4

    def test_odd_median(self):
        assert violin_summary([3.0, 1.0, 2.0])["median"] == 2.0

    def test_empty(self):
        assert violin_summary([])["n"] == 0
