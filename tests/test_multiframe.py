"""Tests for animated multi-frame simulation with warm caches."""

import pytest

from repro.config import GPUConfig
from repro.core.dtexl import BASELINE, DTEXL_BEST
from repro.errors import ConfigError
from repro.sim.multiframe import AnimationResult, AnimationSimulator
from repro.workloads.animation import Animation
from repro.workloads.recipe import SceneRecipe


@pytest.fixture(scope="module")
def config():
    return GPUConfig(screen_width=128, screen_height=64)


@pytest.fixture(scope="module")
def animation():
    recipe = SceneRecipe(
        name="anim", seed=11, is_3d=False, texture_budget_mib=0.3,
        depth_complexity=1.5, sprite_size=(0.2, 0.4), scroll=(0.05, 0.0),
    )
    return Animation(recipe=recipe, num_frames=3)


@pytest.fixture(scope="module")
def warm_result(config, animation):
    return AnimationSimulator(config).run(animation, BASELINE)


class TestAnimation:
    def test_frame_count(self, animation, config):
        assert len(animation.build_all(config)) == 3

    def test_frames_share_textures(self, animation, config):
        frames = animation.build_all(config)
        first = frames[0].allocator.textures
        last = frames[-1].allocator.textures
        assert {t.base_address for t in first.values()} == {
            t.base_address for t in last.values()
        }

    def test_frames_differ_in_geometry(self, animation, config):
        frames = animation.build_all(config)
        v0 = frames[0].scene.draws[-1].mesh.vertices[0].position
        v1 = frames[1].scene.draws[-1].mesh.vertices[0].position
        assert v0 != v1

    def test_of_game(self, config):
        animation = Animation.of_game("SWa", num_frames=2)
        assert len(animation.build_all(config)) == 2

    def test_of_unknown_game(self):
        with pytest.raises(KeyError):
            Animation.of_game("XYZ")

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            Animation(recipe=SceneRecipe(
                name="x", seed=1, is_3d=False, texture_budget_mib=0.1,
            ), num_frames=0)


class TestWarmCaches:
    def test_per_frame_results(self, warm_result):
        assert len(warm_result.frames) == 3
        assert all(f.frame_cycles > 0 for f in warm_result.frames)

    def test_first_frame_is_coldest(self, warm_result):
        """Frame 0 misses more in DRAM than the warm frames."""
        cold = warm_result.frames[0].dram_accesses
        later = [f.dram_accesses for f in warm_result.frames[1:]]
        assert cold >= max(later)

    def test_warmup_ratio_at_least_one(self, warm_result):
        assert warm_result.warmup_ratio() >= 0.95

    def test_totals(self, warm_result):
        assert warm_result.total_cycles == sum(
            f.frame_cycles for f in warm_result.frames
        )
        assert warm_result.fps(600) > 0

    def test_cold_mode_repeats_cold_behaviour(self, config, animation):
        sim = AnimationSimulator(config)
        cold = sim.run(animation, BASELINE, cold_caches_each_frame=True)
        warm = sim.run(animation, BASELINE)
        # Cold-per-frame can never see fewer DRAM fills than warm replay.
        assert (
            sum(f.dram_accesses for f in cold.frames)
            >= sum(f.dram_accesses for f in warm.frames)
        )

    def test_dtexl_works_across_frames(self, config, animation):
        sim = AnimationSimulator(config)
        base = sim.run(animation, BASELINE)
        dtexl = sim.run(animation, DTEXL_BEST)
        assert dtexl.total_l2_accesses < base.total_l2_accesses


class TestFrameCoherenceStats:
    """Edge behaviour of the aggregate animation statistics."""

    def test_warmup_ratio_single_frame_is_neutral(self, warm_result):
        solo = AnimationResult(
            design_point="solo", frames=warm_result.frames[:1]
        )
        assert solo.warmup_ratio() == 1.0

    def test_warmup_ratio_matches_counters(self, warm_result):
        later = warm_result.frames[1:]
        steady = sum(f.l2_accesses for f in later) / len(later)
        expected = warm_result.frames[0].l2_accesses / steady
        assert warm_result.warmup_ratio() == pytest.approx(expected)

    def test_empty_result_fps_is_infinite(self):
        empty = AnimationResult(design_point="none")
        assert empty.fps(600) == float("inf")
        assert empty.total_cycles == 0
        assert empty.total_l2_accesses == 0

    def test_fps_scales_with_frequency(self, warm_result):
        assert warm_result.fps(1200) == pytest.approx(
            2.0 * warm_result.fps(600)
        )


class TestStreamedAnimation:
    """The stream drivers must not perturb warm-cache frame deltas."""

    def test_streaming_matches_batch(self, config, animation):
        batch = AnimationSimulator(config).run(animation, BASELINE)
        streamed = AnimationSimulator(config, stream="streaming").run(
            animation, BASELINE
        )
        assert streamed.frames == batch.frames

    def test_overlap_matches_batch(self, config, animation):
        batch = AnimationSimulator(config).run(animation, DTEXL_BEST)
        overlapped = AnimationSimulator(config, stream="overlap").run(
            animation, DTEXL_BEST
        )
        assert overlapped.frames == batch.frames

    def test_streaming_cold_mode_matches_batch(self, config, animation):
        batch = AnimationSimulator(config).run(
            animation, BASELINE, cold_caches_each_frame=True
        )
        streamed = AnimationSimulator(config, stream="streaming").run(
            animation, BASELINE, cold_caches_each_frame=True
        )
        assert streamed.frames == batch.frames

    def test_streaming_warmup_still_observed(self, config, animation):
        """Frame coherence survives the bounded-memory dataflow."""
        streamed = AnimationSimulator(config, stream="streaming").run(
            animation, BASELINE
        )
        cold = streamed.frames[0].dram_accesses
        later = [f.dram_accesses for f in streamed.frames[1:]]
        assert cold >= max(later)

    def test_streaming_counts_renders(self, config, animation):
        sim = AnimationSimulator(config, stream="streaming")
        sim.run(animation, BASELINE)
        assert sim.renders_performed == animation.num_frames

    def test_unknown_stream_rejected(self, config):
        with pytest.raises(ConfigError, match="unknown stream driver"):
            AnimationSimulator(config, stream="warp")
