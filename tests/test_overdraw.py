"""Tests for the overdraw / depth-complexity analysis."""

import numpy as np
import pytest

from repro.analysis.overdraw import (
    overdraw_ascii,
    overdraw_stats,
    per_tile_overdraw,
    shaded_pixel_map,
)


class TestShadedPixelMap:
    def test_counts_match_trace(self, tiny_config, tiny_trace):
        depth_map = shaded_pixel_map(tiny_trace, tiny_config)
        assert int(depth_map.sum()) == tiny_trace.stats.pixels_shaded

    def test_shape(self, tiny_config, tiny_trace):
        depth_map = shaded_pixel_map(tiny_trace, tiny_config)
        assert depth_map.shape == (
            tiny_config.screen_height, tiny_config.screen_width
        )

    def test_background_covers_everything(self, tiny_config, tiny_trace):
        depth_map = shaded_pixel_map(tiny_trace, tiny_config)
        assert depth_map.min() >= 1  # the background layer


class TestOverdrawStats:
    def test_uniform_map(self):
        stats = overdraw_stats(np.full((32, 64), 2, dtype=np.int32))
        assert stats.mean == pytest.approx(2.0)
        assert stats.peak == 2
        assert stats.concentration == pytest.approx(0.1, rel=0.01)

    def test_hot_spot_concentration(self):
        depth_map = np.ones((40, 40), dtype=np.int32)
        depth_map[:4, :40] = 50  # one hot band = exactly 10% of pixels
        stats = overdraw_stats(depth_map)
        assert stats.concentration > 0.8

    def test_horizontal_bands_detected(self):
        depth_map = np.ones((40, 40), dtype=np.int32)
        depth_map[10:14, :] = 20  # horizontal stripe
        stats = overdraw_stats(depth_map)
        assert stats.horizontal_clustering > 2.0

    def test_vertical_bands_inverted(self):
        depth_map = np.ones((40, 40), dtype=np.int32)
        depth_map[:, 10:14] = 20  # vertical stripe
        stats = overdraw_stats(depth_map)
        assert stats.horizontal_clustering < 0.5

    def test_suite_clusters_horizontally(self, tiny_config, tiny_trace):
        """The synthetic scenes show the paper's gravity effect."""
        depth_map = shaded_pixel_map(tiny_trace, tiny_config)
        stats = overdraw_stats(depth_map)
        assert stats.mean >= 1.0
        assert stats.peak >= stats.mean


class TestPerTileOverdraw:
    def test_every_tile_reported(self, tiny_config, tiny_trace):
        per_tile = per_tile_overdraw(tiny_trace, tiny_config)
        assert len(per_tile) == tiny_config.num_tiles

    def test_values_consistent_with_totals(self, tiny_config, tiny_trace):
        per_tile = per_tile_overdraw(tiny_trace, tiny_config)
        area = tiny_config.tile_size ** 2
        total = sum(v * area for v in per_tile.values())
        assert total == pytest.approx(tiny_trace.stats.pixels_shaded)


class TestAsciiHeatmap:
    def test_dimensions(self):
        depth_map = np.ones((32, 64), dtype=np.int32)
        art = overdraw_ascii(depth_map, block=8)
        lines = art.splitlines()
        assert len(lines) == 4
        assert len(lines[0]) == 8

    def test_hot_region_darker(self):
        depth_map = np.ones((16, 16), dtype=np.int32)
        depth_map[:8, :8] = 100
        art = overdraw_ascii(depth_map, block=8)
        assert art.splitlines()[0][0] == "@"
