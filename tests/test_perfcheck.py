"""The ``perfcheck`` hot-path pass: scanner, hot region, five checks."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.arch import Baseline, CallGraph, ModuleGraph
from repro.analysis.arch.baseline import TODO_JUSTIFICATION
from repro.analysis.perf import (
    PerfCheck,
    PerfContract,
    check_profile,
    compute_hot_region,
    hot_region_to_dot,
    scan_function,
)
from repro.cli import main
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Contract pointing the analyzer at the synthetic ``pkg`` package.
PERF_CONTRACT = {
    "project": {"package": "pkg"},
    "entry": [{
        "function": "pkg.fast.replay",
        "signature": "stream, lut, cache",
        "max_loop_depth": 2,
    }],
    "purity": {
        "entrypoints": ["pkg.fast.replay"],
        "forbidden": ["pkg.ref.ReferenceCache"],
    },
}

#: The same contract as checked-in TOML, for CLI tests.
CONTRACT_TOML = (
    '[project]\n'
    'package = "pkg"\n'
    '\n'
    '[[entry]]\n'
    'function = "pkg.fast.replay"\n'
    'signature = "stream, lut, cache"\n'
    'max_loop_depth = 2\n'
    '\n'
    '[purity]\n'
    'entrypoints = ["pkg.fast.replay"]\n'
    'forbidden = ["pkg.ref.ReferenceCache"]\n'
)

#: A small program that passes every perfcheck rule.  Each mutation
#: fixture below perturbs exactly one property of it.
CLEAN_TREE = {
    "pkg/__init__.py": "",
    "pkg/fast.py": (
        "def replay(stream, lut, cache):\n"
        "    total = 0\n"
        "    access = cache.access\n"
        "    for quad in stream:\n"
        "        for line in quad:\n"
        "            total += access(lut[line])\n"
        "    return total\n"
    ),
    "pkg/ref.py": (
        "class ReferenceCache:\n"
        "    def __init__(self):\n"
        "        self.hits = 0\n"
        "\n"
        "    def access(self, line):\n"
        "        self.hits += 1\n"
        "        return self.hits\n"
    ),
}


def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def run_perf(tmp_path: Path, files: dict, baseline=None,
             update_baseline: bool = False, contract: dict = None):
    src = write_tree(tmp_path / "src", files)
    parsed = PerfContract.from_dict(contract or PERF_CONTRACT)
    check = PerfCheck(parsed, src, baseline=baseline)
    return check.run(update_baseline=update_baseline)


def mutate(extra: dict) -> dict:
    files = dict(CLEAN_TREE)
    files.update(extra)
    return files


def rules_of(report) -> set:
    return {finding.rule for finding in report.findings}


def scan_source(source: str):
    """Scan the first function of a source snippet."""
    return scan_function(ast.parse(source).body[0])


# -- the scanner --------------------------------------------------------------


class TestScanner:
    def test_constant_tuple_in_loop_is_exempt(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        t = (0, 1)\n"
        )
        assert scan.allocations == []

    def test_unpack_assign_tuple_is_exempt(self):
        scan = scan_source(
            "def f(xs, y):\n"
            "    for x in xs:\n"
            "        a, b = x, y\n"
        )
        assert scan.allocations == []

    def test_numpy_index_tuple_is_exempt(self):
        scan = scan_source(
            "def f(xs, u):\n"
            "    for x in xs:\n"
            "        v = u[x, 0]\n"
        )
        assert scan.allocations == []

    def test_statement_level_comprehension_is_blessed(self):
        # The fix for an allocating loop IS a comprehension; the tuples
        # it builds per element are the bulk construction, not a leak.
        scan = scan_source(
            "def f(xs):\n"
            "    rows = [(x, x + 1) for x in xs]\n"
            "    return rows\n"
        )
        assert scan.allocations == []

    def test_comprehension_inside_a_loop_is_one_finding(self):
        scan = scan_source(
            "def f(qs):\n"
            "    for q in qs:\n"
            "        rows = [x for x in q]\n"
        )
        assert [s.kind for s in scan.allocations] == ["comprehension"]

    def test_fstring_in_loop_allocates(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        s = f'{x}'\n"
        )
        assert [s.kind for s in scan.allocations] == ["fstring"]

    def test_closure_in_loop_allocates(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        fn = lambda v: v + x\n"
        )
        assert [s.kind for s in scan.allocations] == ["closure"]

    def test_raise_is_not_double_flagged_for_its_fstring(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x < 0:\n"
            "            raise ValueError(f'bad {x}')\n"
        )
        assert [s.kind for s in scan.fault_paths] == ["raise"]
        assert scan.allocations == []

    def test_rebound_chain_root_is_not_a_finding(self):
        scan = scan_source(
            "def f(xs, make):\n"
            "    for x in xs:\n"
            "        obj = make(x)\n"
            "        v = obj.a.b\n"
        )
        assert scan.chains == []

    def test_loop_invariant_chain_is_a_finding(self):
        scan = scan_source(
            "def f(xs, cache):\n"
            "    for x in xs:\n"
            "        v = cache.stats.hits\n"
        )
        assert [s.detail for s in scan.chains] == ["cache.stats.hits"]

    def test_while_loops_count_toward_depth(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        while x > 0:\n"
            "            x -= 1\n"
        )
        assert scan.max_loop_depth == 2

    def test_print_in_loop_is_a_fault_path(self):
        scan = scan_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        print(x)\n"
        )
        assert [s.kind for s in scan.fault_paths] == ["print"]


# -- the hot region -----------------------------------------------------------


class TestHotRegion:
    IMPURE_FAST = {
        "pkg/fast.py": (
            "from pkg.ref import ReferenceCache\n"
            "\n"
            "def replay(stream, lut, cache):\n"
            "    ref = ReferenceCache()\n"
            "    total = 0\n"
            "    for quad in stream:\n"
            "        for line in quad:\n"
            "            total += lut[line]\n"
            "    return total\n"
        ),
    }

    def build(self, tmp_path, files):
        src = write_tree(tmp_path / "src", files)
        graph = ModuleGraph.build(src, packages=["pkg"])
        return CallGraph(graph)

    def test_region_follows_resolved_constructor_edges(self, tmp_path):
        callgraph = self.build(tmp_path, mutate(self.IMPURE_FAST))
        region = compute_hot_region(callgraph, ["pkg.fast.replay"])
        assert "pkg.ref.ReferenceCache.__init__" in region
        assert region.chain_of("pkg.ref.ReferenceCache.__init__") == [
            "pkg.fast.replay", "pkg.ref.ReferenceCache.__init__",
        ]

    def test_exclusion_prunes_the_subtree(self, tmp_path):
        callgraph = self.build(tmp_path, mutate(self.IMPURE_FAST))
        region = compute_hot_region(
            callgraph, ["pkg.fast.replay"],
            exclude=["pkg.ref.ReferenceCache.__init__"],
        )
        assert "pkg.ref.ReferenceCache.__init__" not in region
        assert region.excluded == ["pkg.ref.ReferenceCache.__init__"]

    def test_missing_entry_point_is_recorded(self, tmp_path):
        callgraph = self.build(tmp_path, CLEAN_TREE)
        region = compute_hot_region(callgraph, ["pkg.fast.gone"])
        assert region.missing == ["pkg.fast.gone"]
        assert region.members() == []

    def test_dot_export_names_the_entry_point(self, tmp_path):
        callgraph = self.build(tmp_path, mutate(self.IMPURE_FAST))
        region = compute_hot_region(callgraph, ["pkg.fast.replay"])
        dot = hot_region_to_dot(callgraph, region, package="pkg")
        assert dot.startswith("digraph")
        assert "fast.replay" in dot
        assert "ref.ReferenceCache.__init__" in dot


# -- the contract -------------------------------------------------------------


class TestContract:
    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no performance contract"):
            PerfContract.load(tmp_path / "perfcontract.toml")

    def test_missing_package_raises(self):
        with pytest.raises(ConfigError, match=r"\[project\] package"):
            PerfContract.from_dict({"entry": [{"function": "pkg.f"}]})

    def test_missing_entries_raises(self):
        with pytest.raises(ConfigError, match=r"\[\[entry\]\]"):
            PerfContract.from_dict({"project": {"package": "pkg"}})

    def test_negative_loop_depth_raises(self):
        with pytest.raises(ConfigError, match="max_loop_depth"):
            PerfContract.from_dict({
                "project": {"package": "pkg"},
                "entry": [{"function": "pkg.f", "max_loop_depth": -1}],
            })

    def test_round_trip_through_toml(self, tmp_path):
        path = tmp_path / "perfcontract.toml"
        path.write_text(CONTRACT_TOML, encoding="utf-8")
        contract = PerfContract.load(path)
        assert contract.package == "pkg"
        assert contract.entries[0].function == "pkg.fast.replay"
        assert contract.entries[0].max_loop_depth == 2
        assert contract.purity_forbidden == ["pkg.ref.ReferenceCache"]


# -- seeded mutation classes --------------------------------------------------


class TestMutations:
    def test_clean_tree_is_clean(self, tmp_path):
        report = run_perf(tmp_path, CLEAN_TREE)
        assert report.ok, [f.fingerprint for f in report.findings]
        assert "pkg.fast.replay" in report.region

    def test_hot_loop_allocation(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache):\n"
                "    total = 0\n"
                "    access = cache.access\n"
                "    for quad in stream:\n"
                "        missed = []\n"
                "        for line in quad:\n"
                "            total += access(lut[line])\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "hot-loop-allocation"
        assert finding.fingerprint == (
            "hot-loop-allocation:pkg.fast.replay:list-literal"
        )
        assert "pkg.fast.replay" in finding.message

    def test_same_kind_sites_aggregate_to_one_finding(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache):\n"
                "    total = 0\n"
                "    for quad in stream:\n"
                "        missed = []\n"
                "        seen = []\n"
                "        for line in quad:\n"
                "            total += lut[line]\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "hot-loop-allocation"
        assert "(2 sites)" in finding.message

    def test_unhoisted_attribute_chain(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache):\n"
                "    total = 0\n"
                "    for quad in stream:\n"
                "        for line in quad:\n"
                "            total += lut[line] + cache.stats.hits\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "unhoisted-attribute-chain"
        assert finding.fingerprint == (
            "unhoisted-attribute-chain:pkg.fast.replay:cache.stats.hits"
        )

    def test_fast_engine_reaching_reference_is_impure(self, tmp_path):
        report = run_perf(tmp_path, mutate(TestHotRegion.IMPURE_FAST))
        (finding,) = report.findings
        assert finding.rule == "engine-purity"
        assert finding.fingerprint == (
            "engine-purity:pkg.fast.replay:"
            "pkg.ref.ReferenceCache.__init__"
        )
        assert "pkg.fast.replay -> pkg.ref.ReferenceCache.__init__" \
            in finding.message

    def test_try_block_in_the_inner_loop(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache):\n"
                "    total = 0\n"
                "    access = cache.access\n"
                "    for quad in stream:\n"
                "        for line in quad:\n"
                "            try:\n"
                "                total += access(lut[line])\n"
                "            except KeyError:\n"
                "                continue\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "hot-loop-fault-path"
        assert finding.fingerprint == (
            "hot-loop-fault-path:pkg.fast.replay:try"
        )

    def test_extra_nesting_level_breaks_the_depth_bound(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache):\n"
                "    total = 0\n"
                "    access = cache.access\n"
                "    for quad in stream:\n"
                "        for line in quad:\n"
                "            for bank in line:\n"
                "                total += access(lut[bank])\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "loop-depth"
        assert finding.fingerprint == "loop-depth:pkg.fast.replay"
        assert "nests loops 3 deep" in finding.message

    def test_signature_drift_is_a_finding(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay(stream, lut, cache, budget):\n"
                "    total = 0\n"
                "    access = cache.access\n"
                "    for quad in stream:\n"
                "        for line in quad:\n"
                "            total += access(lut[line])\n"
                "    return total\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "entrypoint-drift"
        assert "(stream, lut, cache, budget)" in finding.message

    def test_deleted_entry_point_is_a_finding(self, tmp_path):
        report = run_perf(tmp_path, mutate({
            "pkg/fast.py": (
                "def replay_quads(stream, lut, cache):\n"
                "    return 0\n"
            ),
        }))
        (finding,) = report.findings
        assert finding.rule == "missing-entrypoint"
        assert finding.fingerprint == "missing-entrypoint:pkg.fast.replay"

    def test_cold_code_may_allocate_freely(self, tmp_path):
        # Hot-loop rules stop at the hot region's edge: a reporting
        # module full of loops and f-strings is not perfcheck's business.
        report = run_perf(tmp_path, mutate({
            "pkg/report.py": (
                "def table(rows):\n"
                "    out = []\n"
                "    for row in rows:\n"
                "        cells = [f'{c}' for c in row]\n"
                "        out.append({'cells': cells})\n"
                "    return out\n"
            ),
        }))
        assert report.ok, [f.fingerprint for f in report.findings]


# -- the benchmark-profile cross-check ----------------------------------------


class TestProfile:
    CONTRACT = {
        "project": {"package": "pkg"},
        "entry": [{"function": "pkg.fast.replay", "max_loop_depth": 2}],
        "profile": {
            "required_sections": ["engines.fast.quads_per_s"],
            "min_speedup": 2.0,
        },
    }

    def contract(self):
        return PerfContract.from_dict(self.CONTRACT)

    def test_complete_profile_is_clean(self):
        findings = check_profile(self.contract(), {
            "engines": {"fast": {"quads_per_s": 913000.0}},
            "fast_vs_reference_speedup": 3.59,
        }, "BENCH.json")
        assert findings == []

    def test_missing_section_is_drift(self):
        (finding,) = check_profile(self.contract(), {
            "engines": {"reference": {}},
            "fast_vs_reference_speedup": 3.59,
        }, "BENCH.json")
        assert finding.rule == "profile-drift"
        assert finding.fingerprint == (
            "profile-drift:engines.fast.quads_per_s"
        )

    def test_speedup_below_floor_is_a_regression(self):
        (finding,) = check_profile(self.contract(), {
            "engines": {"fast": {"quads_per_s": 913000.0}},
            "fast_vs_reference_speedup": 1.4,
        }, "BENCH.json")
        assert finding.rule == "profile-regression"
        assert "1.40x" in finding.message


# -- baseline ratchet ---------------------------------------------------------


class TestPerfcheckBaseline:
    VIOLATION = {
        "pkg/fast.py": (
            "def replay(stream, lut, cache):\n"
            "    total = 0\n"
            "    for quad in stream:\n"
            "        missed = []\n"
            "        for line in quad:\n"
            "            total += lut[line]\n"
            "    return total\n"
        ),
    }
    FINGERPRINT = "hot-loop-allocation:pkg.fast.replay:list-literal"

    def test_justified_entry_waives_the_finding(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json", entries={
            self.FINGERPRINT: "per-tile scratch, measured negligible",
        })
        report = run_perf(tmp_path, mutate(self.VIOLATION),
                          baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1

    def test_update_baseline_writes_gating_todo_entries(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json")
        report = run_perf(tmp_path, mutate(self.VIOLATION),
                          baseline=baseline, update_baseline=True)
        written = json.loads((tmp_path / "baseline.json").read_text())
        assert written["entries"][0]["justification"] == TODO_JUSTIFICATION
        # The TODO stub itself gates: the run is still not ok.
        assert not report.ok
        assert any(f.rule == "unjustified-baseline"
                   for f in report.findings)

    def test_fixed_violation_surfaces_a_stale_entry(self, tmp_path):
        baseline = Baseline(path=tmp_path / "baseline.json", entries={
            self.FINGERPRINT: "was justified once",
        })
        report = run_perf(tmp_path, CLEAN_TREE, baseline=baseline)
        assert report.ok
        assert report.stale == [self.FINGERPRINT]


# -- the repository gates on itself -------------------------------------------


class TestRepoTip:
    def test_repo_tip_is_clean_under_its_baseline(self):
        contract = PerfContract.load(REPO_ROOT / "perfcontract.toml")
        baseline = Baseline.load(REPO_ROOT / "perfcheck-baseline.json")
        check = PerfCheck(
            contract, REPO_ROOT / "src", baseline=baseline,
            profile_path=REPO_ROOT / "BENCH_replay.json",
        )
        report = check.run()
        assert report.ok, [f.fingerprint for f in report.findings]
        assert not report.stale, report.stale
        assert report.region.entries, "expected declared hot entry points"
        assert not report.region.missing, report.region.missing

    def test_repo_baseline_is_small_and_justified(self):
        baseline = Baseline.load(REPO_ROOT / "perfcheck-baseline.json")
        assert baseline.entries, "expected the known waived findings"
        assert len(baseline.entries) <= 2, sorted(baseline.entries)
        assert not baseline.unjustified()

    def test_repo_waivers_cite_benchmark_evidence(self):
        # Perf waivers must point at a number, not an opinion (see
        # docs/WAIVERS.md): every entry names the benchmark file.
        baseline = Baseline.load(REPO_ROOT / "perfcheck-baseline.json")
        for fingerprint, justification in baseline.entries.items():
            assert "BENCH_replay.json" in justification, fingerprint


# -- CLI ----------------------------------------------------------------------


def write_fixture(tmp_path: Path, files: dict) -> tuple:
    src = write_tree(tmp_path / "src", files)
    contract = tmp_path / "perfcontract.toml"
    contract.write_text(CONTRACT_TOML, encoding="utf-8")
    return src, contract


class TestPerfcheckCli:
    def test_findings_gate_with_exit_1_and_json(self, tmp_path, capsys):
        src, contract = write_fixture(tmp_path, mutate(
            TestPerfcheckBaseline.VIOLATION
        ))
        code = main([
            "perfcheck", "--src", str(src), "--contract", str(contract),
            "--baseline", str(tmp_path / "baseline.json"),
            "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "perfcheck"
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "hot-loop-allocation"
        assert "pkg.fast.replay" in payload["hot_region"]

    def test_clean_tree_exits_0_and_writes_artifacts(self, tmp_path,
                                                     capsys):
        src, contract = write_fixture(tmp_path, CLEAN_TREE)
        report_path = tmp_path / "perfcheck-report.json"
        dot_path = tmp_path / "hotregion.dot"
        code = main([
            "perfcheck", "--src", str(src), "--contract", str(contract),
            "--baseline", str(tmp_path / "baseline.json"),
            "--report", str(report_path), "--dot", str(dot_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "perfcheck: no findings" in out
        assert "hot region: 1 functions reachable from 1 entry points" \
            in out
        payload = json.loads(report_path.read_text())
        assert payload["count"] == 0
        assert payload["stats"]["hot_functions"] == 1
        assert dot_path.read_text().startswith("digraph")

    def test_profile_json_cross_check_gates(self, tmp_path, capsys):
        src, contract = write_fixture(tmp_path, CLEAN_TREE)
        contract.write_text(
            CONTRACT_TOML
            + '\n[profile]\n'
              'required_sections = ["engines.fast.quads_per_s"]\n'
              'min_speedup = 2.0\n',
            encoding="utf-8",
        )
        profile = tmp_path / "BENCH.json"
        profile.write_text(json.dumps({
            "engines": {"reference": {"quads_per_s": 1.0}},
            "fast_vs_reference_speedup": 1.2,
        }), encoding="utf-8")
        code = main([
            "perfcheck", "--src", str(src), "--contract", str(contract),
            "--baseline", str(tmp_path / "baseline.json"),
            "--profile-json", str(profile), "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["rule"] for f in payload["findings"]} == {
            "profile-drift", "profile-regression",
        }

    def test_update_baseline_flag_writes_the_file(self, tmp_path, capsys):
        src, contract = write_fixture(tmp_path, mutate(
            TestPerfcheckBaseline.VIOLATION
        ))
        baseline_path = tmp_path / "baseline.json"
        code = main([
            "perfcheck", "--src", str(src), "--contract", str(contract),
            "--baseline", str(baseline_path), "--update-baseline",
        ])
        assert code == 1  # TODO stubs still gate
        written = json.loads(baseline_path.read_text())
        assert written["entries"][0]["justification"] == TODO_JUSTIFICATION
