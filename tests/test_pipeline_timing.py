"""Tests for the coupled vs decoupled raster-pipeline timing model."""

import pytest

from repro.config import GPUConfig
from repro.raster.pipeline import (
    RasterPipelineModel,
    SubtileWork,
    TileWork,
)


@pytest.fixture
def config():
    return GPUConfig(screen_width=128, screen_height=64)


def subtile(num_quads, compute_per_quad=10, stall_per_quad=0):
    work = SubtileWork()
    for _ in range(num_quads):
        work.add_quad(compute_per_quad, stall_per_quad)
    return work


def tile_work(step, quads_per_sc, fetch=1, **kwargs):
    return TileWork(
        tile=(step, 0),
        step=step,
        fetch_cycles=fetch,
        subtiles=[subtile(n, **kwargs) for n in quads_per_sc],
    )


def simulate(config, tiles, decoupled):
    return RasterPipelineModel(config, decoupled).simulate(tiles)


class TestSubtileWork:
    def test_accumulates(self):
        work = subtile(3, compute_per_quad=5, stall_per_quad=2)
        assert work.num_quads == 3
        assert work.compute_cycles == 15
        assert work.stall_cycles == 6

    def test_warp_costs_partition_totals(self):
        work = SubtileWork(num_quads=3, compute_cycles=10, stall_cycles=7)
        warps = work.warp_costs()
        assert len(warps) == 3
        assert sum(w.compute_cycles for w in warps) == 10
        assert sum(w.stall_cycles for w in warps) == 7

    def test_warp_costs_empty(self):
        assert SubtileWork().warp_costs() == []


class TestFrameTiming:
    def test_empty_frame(self, config):
        timing = simulate(config, [], decoupled=False)
        assert timing.total_cycles == 0

    def test_fps(self, config):
        timing = simulate(
            config, [tile_work(0, [10, 10, 10, 10])], decoupled=False
        )
        fps = timing.fps(config.frequency_mhz)
        assert fps == pytest.approx(
            config.frequency_mhz * 1e6 / timing.total_cycles
        )

    def test_idle_cycles_nonnegative(self, config):
        timing = simulate(
            config,
            [tile_work(s, [40, 0, 0, 0]) for s in range(4)],
            decoupled=False,
        )
        assert all(idle >= 0 for idle in timing.sc_idle_cycles)

    def test_per_tile_cycles_recorded(self, config):
        tiles = [tile_work(s, [10, 20, 30, 40]) for s in range(3)]
        timing = simulate(config, tiles, decoupled=False)
        assert len(timing.per_tile_sc_cycles) == 3
        assert len(timing.per_tile_sc_cycles[0]) == 4


class TestCoupledVsDecoupled:
    def test_decoupled_never_slower(self, config):
        tiles = [
            tile_work(s, [s % 4 * 30 + 5, 10, 60, 20]) for s in range(20)
        ]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        assert decoupled.total_cycles <= coupled.total_cycles

    def test_balanced_work_gains_little(self, config):
        tiles = [tile_work(s, [25, 25, 25, 25]) for s in range(20)]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        gain = coupled.total_cycles / decoupled.total_cycles
        assert gain < 1.2

    def test_alternating_imbalance_gains_a_lot(self, config):
        """SCs take turns being the heavy one: decoupling averages it out."""
        tiles = []
        for s in range(40):
            quads = [4, 4, 4, 4]
            quads[s % 4] = 120
            tiles.append(tile_work(s, quads))
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        gain = coupled.total_cycles / decoupled.total_cycles
        assert gain > 1.5

    def test_permanent_imbalance_gains_little(self, config):
        """One SC always heavy: decoupling cannot help the critical chain."""
        tiles = [tile_work(s, [120, 4, 4, 4]) for s in range(40)]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        gain = coupled.total_cycles / decoupled.total_cycles
        assert gain < 1.15

    def test_fetch_bound_frame(self, config):
        """A huge fetch cost dominates both architectures equally-ish."""
        tiles = [tile_work(s, [1, 1, 1, 1], fetch=10000) for s in range(5)]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        assert coupled.total_cycles >= 50000
        assert decoupled.total_cycles >= 50000

    def test_busy_cycles_equal_between_modes(self, config):
        """The architectures move the same work; only waiting differs."""
        tiles = [tile_work(s, [10, 20, 30, 40], stall_per_quad=3)
                 for s in range(10)]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        assert coupled.sc_busy_cycles == decoupled.sc_busy_cycles
        assert coupled.sc_issue_cycles == decoupled.sc_issue_cycles


class TestFlushModelling:
    def test_coupled_flush_serializes_per_tile(self, config):
        """More tiles -> proportionally more flush serialization."""
        few = simulate(
            config, [tile_work(s, [1, 1, 1, 1]) for s in range(2)],
            decoupled=False,
        )
        many = simulate(
            config, [tile_work(s, [1, 1, 1, 1]) for s in range(12)],
            decoupled=False,
        )
        pixels = config.tile_size ** 2
        flush = pixels * config.color_bytes_per_pixel // config.flush_bytes_per_cycle
        assert many.total_cycles - few.total_cycles >= 10 * flush

    def test_decoupled_banks_flush_in_parallel(self, config):
        tiles = [tile_work(s, [1, 1, 1, 1]) for s in range(12)]
        coupled = simulate(config, tiles, decoupled=False)
        decoupled = simulate(config, tiles, decoupled=True)
        assert decoupled.total_cycles < coupled.total_cycles


class TestFifoSkewBound:
    def make_rotating_tiles(self, count=40):
        tiles = []
        for s in range(count):
            quads = [4, 4, 4, 4]
            quads[s % 4] = 120
            tiles.append(tile_work(s, quads))
        return tiles

    def test_shallow_fifo_limits_decoupling_gain(self, config):
        """fifo_depth=1 forces near-lockstep progress; deep FIFOs free it."""
        import dataclasses

        tiles = self.make_rotating_tiles()
        shallow_cfg = dataclasses.replace(config, fifo_depth=1)
        deep_cfg = dataclasses.replace(config, fifo_depth=64)
        shallow = RasterPipelineModel(shallow_cfg, decoupled=True).simulate(tiles)
        deep = RasterPipelineModel(deep_cfg, decoupled=True).simulate(tiles)
        assert shallow.total_cycles > deep.total_cycles

    def test_deep_fifo_never_slower_than_shallow(self, config):
        import dataclasses

        for depth_a, depth_b in [(1, 4), (4, 16), (2, 64)]:
            tiles = self.make_rotating_tiles()
            a = RasterPipelineModel(
                dataclasses.replace(config, fifo_depth=depth_a), decoupled=True
            ).simulate(tiles)
            b = RasterPipelineModel(
                dataclasses.replace(config, fifo_depth=depth_b), decoupled=True
            ).simulate(tiles)
            assert b.total_cycles <= a.total_cycles

    def test_decoupled_with_fifo_still_beats_coupled(self, config):
        import dataclasses

        tiles = self.make_rotating_tiles()
        shallow_cfg = dataclasses.replace(config, fifo_depth=2)
        decoupled = RasterPipelineModel(shallow_cfg, decoupled=True).simulate(tiles)
        coupled = RasterPipelineModel(shallow_cfg, decoupled=False).simulate(tiles)
        assert decoupled.total_cycles <= coupled.total_cycles

    def test_fifo_irrelevant_for_balanced_work(self, config):
        import dataclasses

        tiles = [tile_work(s, [25, 25, 25, 25]) for s in range(20)]
        shallow = RasterPipelineModel(
            dataclasses.replace(config, fifo_depth=1), decoupled=True
        ).simulate(tiles)
        deep = RasterPipelineModel(
            dataclasses.replace(config, fifo_depth=64), decoupled=True
        ).simulate(tiles)
        assert shallow.total_cycles <= deep.total_cycles * 1.05
