"""Cross-cutting property-based tests on system invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.raster.pipeline import RasterPipelineModel, SubtileWork, TileWork


def build_tiles(spec):
    """spec: list of 4-tuples of (quads, compute/quad, stall/quad)."""
    tiles = []
    for step, per_sc in enumerate(spec):
        subtiles = []
        for quads, compute, stall in per_sc:
            work = SubtileWork()
            for _ in range(quads):
                work.add_quad(compute, stall)
            subtiles.append(work)
        tiles.append(
            TileWork(tile=(step, 0), step=step, fetch_cycles=1,
                     subtiles=subtiles)
        )
    return tiles


subtile_spec = st.tuples(
    st.integers(min_value=0, max_value=40),   # quads
    st.integers(min_value=1, max_value=30),   # compute per quad
    st.integers(min_value=0, max_value=60),   # stall per quad
)
tile_spec = st.tuples(subtile_spec, subtile_spec, subtile_spec, subtile_spec)
frame_spec = st.lists(tile_spec, min_size=1, max_size=12)


class TestPipelineInvariants:
    @given(frame_spec)
    @settings(max_examples=40, deadline=None)
    def test_decoupled_never_slower_than_coupled(self, spec):
        """The paper's architectural claim, as a universal property."""
        config = GPUConfig(screen_width=128, screen_height=64)
        tiles = build_tiles(spec)
        coupled = RasterPipelineModel(config, decoupled=False).simulate(tiles)
        decoupled = RasterPipelineModel(config, decoupled=True).simulate(tiles)
        assert decoupled.total_cycles <= coupled.total_cycles

    @given(frame_spec)
    @settings(max_examples=40, deadline=None)
    def test_frame_time_at_least_busiest_core(self, spec):
        config = GPUConfig(screen_width=128, screen_height=64)
        tiles = build_tiles(spec)
        for decoupled in (False, True):
            timing = RasterPipelineModel(config, decoupled).simulate(tiles)
            assert timing.total_cycles >= max(timing.sc_busy_cycles)

    @given(frame_spec)
    @settings(max_examples=30, deadline=None)
    def test_adding_work_never_speeds_up(self, spec):
        """Monotonicity: extra quads cannot shorten the frame."""
        config = GPUConfig(screen_width=128, screen_height=64)
        light = build_tiles(spec)
        heavy_spec = [
            tuple((q + 2, c, s) for q, c, s in per_sc) for per_sc in spec
        ]
        heavy = build_tiles(heavy_spec)
        for decoupled in (False, True):
            a = RasterPipelineModel(config, decoupled).simulate(light)
            b = RasterPipelineModel(config, decoupled).simulate(heavy)
            assert b.total_cycles >= a.total_cycles


class TestSchedulerInvariants:
    @given(
        st.sampled_from(
            ["FG-xshift2", "FG-check", "CG-square", "CG-yrect", "CG-tri"]
        ),
        st.sampled_from(["const", "flp1", "flp2", "flp3"]),
        st.sampled_from(["scanline", "zorder", "hilbert", "sorder"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_tile_splits_quads_equally(self, grouping, assignment, order):
        """Any (grouping x assignment x order): a full tile gives each
        SC exactly a quarter of the quads — the Z-Buffer banks are equal
        sized, so this is a hardware requirement, not a preference."""
        from repro.core.quad_grouping import get_grouping
        from repro.core.scheduler import QuadScheduler
        from repro.core.subtile_assignment import get_assignment

        config = GPUConfig(screen_width=128, screen_height=64)
        scheduler = QuadScheduler(
            config=config,
            grouping=get_grouping(grouping),
            assignment=get_assignment(assignment),
            order_name=order,
        )
        side = config.quads_per_tile_side
        full_tile = [(qx, qy) for qx in range(side) for qy in range(side)]
        for step in (0, scheduler.num_steps // 2, scheduler.num_steps - 1):
            counts = scheduler.quad_counts_per_core(step, full_tile)
            assert counts == [side * side // 4] * 4


class TestSamplerInvariants:
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_trilinear_superset_of_bilinear_at_level(self, u, v, level):
        from repro.texture.sampler import FilterMode, Sampler
        from repro.texture.texture import Texture

        texture = Texture(0, 128, 128, base_address=1 << 28)
        bilinear = Sampler(FilterMode.BILINEAR).footprint(
            texture, u, v, float(level)
        )
        trilinear = Sampler(FilterMode.TRILINEAR).footprint(
            texture, u, v, float(level) + 0.5
        )
        assert set(bilinear.lines) <= set(trilinear.lines)


class TestEnergyInvariants:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_monotone_in_l2_accesses(self, low, extra):
        from repro.power.energy_model import EnergyModel

        model = EnergyModel()
        def total(l2):
            return model.frame_energy(
                l1_accesses=0, l2_accesses=l2, dram_accesses=0,
                vertex_accesses=0, tile_accesses=0, sc_issue_cycles=0,
                quads_processed=0, frame_cycles=1000, frequency_mhz=600,
            ).total_mj
        assert total(low + extra) >= total(low)


class TestReuseInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=80),
        st.lists(st.integers(min_value=0, max_value=20), max_size=80),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_totals_additive(self, a, b):
        from repro.analysis.reuse import reuse_profile

        pa, pb = reuse_profile(a), reuse_profile(b)
        merged = pa.merge(pb)
        assert merged.total_accesses == len(a) + len(b)
        assert merged.cold_accesses == pa.cold_accesses + pb.cold_accesses
