"""Tests for the quad groupings of Figure 6."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quad_grouping import (
    COARSE_GRAINED,
    FINE_GRAINED,
    GROUPINGS,
    NUM_SLOTS,
    SubtileLayout,
    get_grouping,
)

SIDE = 16  # quads per tile side for 32x32-pixel tiles


def slot_counts(name, side=SIDE):
    grouping = get_grouping(name)
    counts = [0] * NUM_SLOTS
    for qy in range(side):
        for qx in range(side):
            counts[grouping.slot(qx, qy, side)] += 1
    return counts


class TestRegistry:
    def test_six_fine_grained(self):
        assert len(FINE_GRAINED) == 6
        assert all(g.fine_grained for g in FINE_GRAINED.values())

    def test_four_coarse_grained(self):
        assert len(COARSE_GRAINED) == 4
        assert not any(g.fine_grained for g in COARSE_GRAINED.values())

    def test_paper_named_groupings_present(self):
        for name in ["FG-xshift2", "CG-square", "CG-yrect", "CG-xrect", "CG-tri"]:
            assert name in GROUPINGS

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_grouping("FG-nope")

    def test_out_of_tile_quad_rejected(self):
        with pytest.raises(ValueError):
            get_grouping("CG-square").slot(SIDE, 0, SIDE)


class TestBalancedPartition:
    @pytest.mark.parametrize("name", sorted(GROUPINGS))
    def test_all_slots_used_equally(self, name):
        """Every grouping splits the tile into 4 equal subtiles."""
        counts = slot_counts(name)
        assert counts == [SIDE * SIDE // 4] * NUM_SLOTS

    @pytest.mark.parametrize("name", sorted(GROUPINGS))
    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_slots_in_range_for_all_sides(self, name, side):
        grouping = get_grouping(name)
        for qy in range(side):
            for qx in range(side):
                assert 0 <= grouping.slot(qx, qy, side) < NUM_SLOTS


class TestFineGrainedAdjacency:
    @pytest.mark.parametrize("name", ["FG-check", "FG-check2"])
    def test_checkerboards_never_share_4neighbours(self, name):
        grouping = get_grouping(name)
        for qy in range(SIDE):
            for qx in range(SIDE):
                slot = grouping.slot(qx, qy, SIDE)
                for dx, dy in [(1, 0), (0, 1)]:
                    nx, ny = qx + dx, qy + dy
                    if nx < SIDE and ny < SIDE:
                        assert grouping.slot(nx, ny, SIDE) != slot

    def test_xshift2_horizontal_pairs(self):
        """FG-xshift2: at most one same-slot horizontal neighbour, none vertical."""
        grouping = get_grouping("FG-xshift2")
        for qy in range(SIDE):
            for qx in range(SIDE):
                slot = grouping.slot(qx, qy, SIDE)
                same_horizontal = sum(
                    1
                    for nx in (qx - 1, qx + 1)
                    if 0 <= nx < SIDE and grouping.slot(nx, qy, SIDE) == slot
                )
                assert same_horizontal <= 1
                if qy + 1 < SIDE:
                    assert grouping.slot(qx, qy + 1, SIDE) != slot

    def test_yshift2_is_transpose_of_xshift2(self):
        xs = get_grouping("FG-xshift2")
        ys = get_grouping("FG-yshift2")
        for qy in range(SIDE):
            for qx in range(SIDE):
                assert xs.slot(qx, qy, SIDE) == ys.slot(qy, qx, SIDE)

    def test_diag_stripes(self):
        grouping = get_grouping("FG-diag")
        # Along an anti-diagonal, the slot is constant.
        assert grouping.slot(0, 3, SIDE) == grouping.slot(3, 0, SIDE)
        assert grouping.slot(1, 2, SIDE) == grouping.slot(2, 1, SIDE)

    def test_fine_grained_layout_interleaved(self):
        for grouping in FINE_GRAINED.values():
            assert grouping.layout is SubtileLayout.INTERLEAVED


class TestCoarseGrainedShapes:
    def test_square_quadrants(self):
        grouping = get_grouping("CG-square")
        assert grouping.slot(0, 0, SIDE) == 0
        assert grouping.slot(SIDE - 1, 0, SIDE) == 1
        assert grouping.slot(0, SIDE - 1, SIDE) == 2
        assert grouping.slot(SIDE - 1, SIDE - 1, SIDE) == 3
        assert grouping.layout is SubtileLayout.SQUARE

    def test_xrect_vertical_strips(self):
        grouping = get_grouping("CG-xrect")
        for qy in range(SIDE):
            assert grouping.slot(0, qy, SIDE) == 0
            assert grouping.slot(SIDE - 1, qy, SIDE) == 3
        assert grouping.layout is SubtileLayout.XSTRIPS

    def test_yrect_horizontal_strips(self):
        grouping = get_grouping("CG-yrect")
        for qx in range(SIDE):
            assert grouping.slot(qx, 0, SIDE) == 0
            assert grouping.slot(qx, SIDE - 1, SIDE) == 3
        assert grouping.layout is SubtileLayout.YSTRIPS

    def test_triangles_meet_at_center(self):
        grouping = get_grouping("CG-tri")
        assert grouping.slot(SIDE // 2, 0, SIDE) == 0       # north
        assert grouping.slot(SIDE - 1, SIDE // 2, SIDE) == 1  # east
        assert grouping.slot(0, SIDE // 2, SIDE) == 2       # west
        assert grouping.slot(SIDE // 2, SIDE - 1, SIDE) == 3  # south

    @pytest.mark.parametrize("name", sorted(COARSE_GRAINED))
    def test_coarse_groupings_are_connected_blobs(self, name):
        """Each CG subtile is 4-connected (one contiguous region)."""
        grouping = get_grouping(name)
        grid = grouping.slot_map(SIDE)
        for slot in range(NUM_SLOTS):
            cells = {
                (qx, qy)
                for qy in range(SIDE) for qx in range(SIDE)
                if grid[qy][qx] == slot
            }
            start = next(iter(cells))
            frontier, seen = [start], {start}
            while frontier:
                cx, cy = frontier.pop()
                for nx, ny in [(cx+1, cy), (cx-1, cy), (cx, cy+1), (cx, cy-1)]:
                    if (nx, ny) in cells and (nx, ny) not in seen:
                        seen.add((nx, ny))
                        frontier.append((nx, ny))
            assert seen == cells


class TestAdjacencyScore:
    def coherence(self, name):
        """Fraction of quad 4-neighbour pairs that share a slot."""
        grouping = get_grouping(name)
        grid = grouping.slot_map(SIDE)
        same = total = 0
        for qy in range(SIDE):
            for qx in range(SIDE):
                for nx, ny in [(qx + 1, qy), (qx, qy + 1)]:
                    if nx < SIDE and ny < SIDE:
                        total += 1
                        same += grid[qy][qx] == grid[ny][nx]
        return same / total

    def test_coarse_beats_fine_on_adjacency(self):
        """The premise of the paper: CG keeps adjacent quads together."""
        worst_cg = min(self.coherence(n) for n in COARSE_GRAINED)
        best_fg = max(self.coherence(n) for n in FINE_GRAINED)
        assert worst_cg > best_fg

    def test_slot_map_matches_slot(self):
        grouping = get_grouping("CG-square")
        grid = grouping.slot_map(8)
        assert grid[7][0] == grouping.slot(0, 7, 8)
