"""Tests for the rasterizer: coverage, Early-Z interaction, footprints."""

import pytest

from repro.config import GPUConfig
from repro.geometry.mesh import ShaderProgram
from repro.geometry.primitive_assembly import Primitive
from repro.geometry.vec import Vec2, Vec3, Vec4
from repro.geometry.vertex_stage import TransformedVertex
from repro.raster.rasterizer import Rasterizer
from repro.raster.setup import setup_primitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.texture import Texture


@pytest.fixture
def config():
    return GPUConfig(screen_width=64, screen_height=64)  # one 2x2 tile grid


@pytest.fixture
def texture():
    return Texture(0, 128, 128, base_address=1 << 28)


def ndc_primitive(points, pid=0, depth=0.0, shader=None, uv_scale=1.0,
                  blend=False, depth_write=True):
    vertices = tuple(
        TransformedVertex(
            clip_position=Vec4(x, y, depth, 1.0),
            uv=Vec2((x + 1) / 2 * uv_scale, (1 - y) / 2 * uv_scale),
            color=Vec3(1, 1, 1),
        )
        for x, y in points
    )
    prim = Primitive(
        primitive_id=pid, vertices=vertices, texture_id=0,
        shader=shader or ShaderProgram(alu_cycles=10, texture_samples=1),
        blend=blend, depth_write=depth_write,
    )
    return prim


def full_screen(pid=0, depth=0.0, **kwargs):
    """Two NDC triangles covering the whole screen, as primitives."""
    return [
        ndc_primitive([(-1, 1), (1, 1), (-1, -1)], pid=pid, depth=depth, **kwargs),
        ndc_primitive([(1, 1), (1, -1), (-1, -1)], pid=pid, depth=depth, **kwargs),
    ]


def rasterize(config, texture, primitives, tile=(0, 0)):
    rasterizer = Rasterizer(config, {0: texture})
    zbuffer = ZBuffer(config.tile_size)
    screen = [
        setup_primitive(p, config.screen_width, config.screen_height)
        for p in primitives
    ]
    return rasterizer.rasterize_tile(tile, screen, zbuffer), rasterizer


class TestCoverage:
    def test_full_screen_covers_every_pixel_once(self, config, texture):
        quads, rasterizer = rasterize(config, texture, full_screen())
        assert rasterizer.pixels_shaded == config.tile_size ** 2
        covered = {(q.qx, q.qy) for q in quads}
        side = config.quads_per_tile_side
        assert len(covered) == side * side

    def test_quads_in_primitive_order(self, config, texture):
        prims = full_screen(pid=0) + full_screen(pid=1, depth=-0.5)
        quads, _ = rasterize(config, texture, prims)
        pids = [q.primitive_id for q in quads]
        assert pids == sorted(pids)

    def test_small_triangle_partial_quad_coverage(self, config, texture):
        # A triangle covering ~1 pixel at the tile origin.
        prim = ndc_primitive([(-1, 1), (-0.95, 1), (-1, 0.95)])
        quads, _ = rasterize(config, texture, [prim])
        assert len(quads) == 1
        assert quads[0].covered_pixels < 4

    def test_offscreen_triangle_produces_nothing(self, config, texture):
        prim = ndc_primitive([(2, 2), (3, 2), (2, 3)])
        quads, _ = rasterize(config, texture, [prim])
        assert quads == []

    def test_second_tile_region(self, config, texture):
        quads, _ = rasterize(config, texture, full_screen(), tile=(1, 1))
        assert len(quads) == config.quads_per_tile
        assert all(q.tile == (1, 1) for q in quads)


class TestEarlyZ:
    def test_occluded_layer_fully_culled(self, config, texture):
        near = full_screen(pid=0, depth=-0.5)   # closer (smaller z)
        far = full_screen(pid=1, depth=0.5)
        quads, _ = rasterize(config, texture, near + far)
        assert all(q.primitive_id == 0 for q in quads)

    def test_back_to_front_keeps_both_layers(self, config, texture):
        far = full_screen(pid=0, depth=0.5)
        near = full_screen(pid=1, depth=-0.5)
        quads, _ = rasterize(config, texture, far + near)
        pids = {q.primitive_id for q in quads}
        assert pids == {0, 1}

    def test_no_depth_write_does_not_occlude(self, config, texture):
        transparent = full_screen(pid=0, depth=-0.5, depth_write=False,
                                  blend=True)
        opaque = full_screen(pid=1, depth=0.5)
        quads, _ = rasterize(config, texture, transparent + opaque)
        assert {q.primitive_id for q in quads} == {0, 1}

    def test_blend_flag_propagates(self, config, texture):
        quads, _ = rasterize(
            config, texture, full_screen(blend=True, depth_write=False)
        )
        assert all(q.blend for q in quads)


class TestFootprints:
    def test_quads_carry_texture_lines(self, config, texture):
        quads, _ = rasterize(config, texture, full_screen())
        assert all(q.texture_lines for q in quads)
        for quad in quads:
            assert len(set(quad.texture_lines)) == len(quad.texture_lines)

    def test_zero_samples_no_lines(self, config, texture):
        shader = ShaderProgram(alu_cycles=5, texture_samples=0)
        quads, _ = rasterize(config, texture, full_screen(shader=shader))
        assert all(q.texture_lines == () for q in quads)

    def test_minified_texture_raises_lod(self, config, texture):
        """uv_scale 8: ~16 texels per pixel -> LOD ~4."""
        low, _ = rasterize(config, texture, full_screen(uv_scale=1.0))
        high, _ = rasterize(config, texture, full_screen(uv_scale=8.0))
        assert high[10].lod > low[10].lod

    def test_adjacent_quads_share_lines(self, config, texture):
        """The locality DTexL exploits: neighbouring quads overlap."""
        quads, _ = rasterize(config, texture, full_screen())
        by_pos = {(q.qx, q.qy): q for q in quads}
        shared = 0
        for (qx, qy), quad in by_pos.items():
            right = by_pos.get((qx + 1, qy))
            if right and set(quad.texture_lines) & set(right.texture_lines):
                shared += 1
        assert shared > len(by_pos) * 0.3

    def test_compute_cycles_include_texture_issues(self, config, texture):
        quads, _ = rasterize(config, texture, full_screen())
        q = quads[0]
        assert q.compute_cycles == q.alu_cycles + len(q.texture_lines)

    def test_missing_texture_tolerated(self, config):
        rasterizer = Rasterizer(config, {})
        zbuffer = ZBuffer(config.tile_size)
        prim = setup_primitive(
            full_screen()[0], config.screen_width, config.screen_height
        )
        quads = rasterizer.rasterize_tile((0, 0), [prim], zbuffer)
        assert quads
        assert all(q.texture_lines == () for q in quads)


class TestScreenEdges:
    def test_partial_edge_tile_clips_to_screen(self, texture):
        config = GPUConfig(screen_width=48, screen_height=48)
        quads, rasterizer = rasterize(config, texture, full_screen(),
                                      tile=(1, 1))
        # Tile (1,1) holds only a 16x16 valid region.
        assert rasterizer.pixels_shaded == 16 * 16
