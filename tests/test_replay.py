"""Tests for the trace replayer (pass 2)."""

import pytest

from repro.core.dtexl import BASELINE, DTexLConfig, PAPER_CONFIGURATIONS
from repro.sim.replay import TraceReplayer


@pytest.fixture(scope="module")
def replayer(tiny_config):
    return TraceReplayer(tiny_config)


@pytest.fixture(scope="module")
def baseline_result(replayer, tiny_trace):
    return replayer.run(tiny_trace, BASELINE)


class TestAccounting:
    def test_all_quads_replayed(self, baseline_result, tiny_trace):
        assert baseline_result.total_quads == tiny_trace.total_quads

    def test_per_tile_counts_sum_to_total(self, baseline_result):
        total = sum(sum(c) for c in baseline_result.per_tile_quad_counts)
        assert total == baseline_result.total_quads

    def test_l1_accesses_equal_texture_lines(self, baseline_result, tiny_trace):
        assert baseline_result.l1_accesses == tiny_trace.total_texture_lines

    def test_l2_conservation(self, baseline_result):
        """L2 accesses = L1 misses + vertex misses + tile-cache misses."""
        assert baseline_result.l2_accesses <= (
            baseline_result.l1_accesses
            + baseline_result.vertex_accesses
            + baseline_result.tile_accesses
        )
        assert baseline_result.l2_accesses >= baseline_result.dram_accesses

    def test_timing_positive(self, baseline_result):
        assert baseline_result.frame_cycles > 0
        assert baseline_result.fps(600) > 0

    def test_energy_positive(self, baseline_result):
        assert baseline_result.energy.total_mj > 0

    def test_deterministic(self, replayer, tiny_trace):
        a = replayer.run(tiny_trace, BASELINE)
        b = replayer.run(tiny_trace, BASELINE)
        assert a.l2_accesses == b.l2_accesses
        assert a.frame_cycles == b.frame_cycles
        assert a.energy.total_mj == pytest.approx(b.energy.total_mj)


class TestDesignPointOrdering:
    def test_cg_reduces_l2_vs_fg(self, replayer, tiny_trace, baseline_result):
        cg = replayer.run(tiny_trace, PAPER_CONFIGURATIONS["CG-square-coupled"])
        assert cg.l2_accesses < baseline_result.l2_accesses

    def test_cg_reduces_replication(self, replayer, tiny_trace, baseline_result):
        cg = replayer.run(tiny_trace, PAPER_CONFIGURATIONS["CG-square-coupled"])
        assert cg.l1_replication_factor < baseline_result.l1_replication_factor

    def test_upper_bound_has_lowest_l2(self, replayer, tiny_trace):
        ub = replayer.run(tiny_trace, PAPER_CONFIGURATIONS["upper-bound"])
        for name in ["Zorder-const", "HLB-flp2", "Sorder-const"]:
            other = replayer.run(tiny_trace, PAPER_CONFIGURATIONS[name])
            assert ub.l2_accesses <= other.l2_accesses

    def test_upper_bound_single_core(self, replayer, tiny_trace):
        ub = replayer.run(tiny_trace, PAPER_CONFIGURATIONS["upper-bound"])
        assert ub.l1_replication_factor == 1.0
        assert len(ub.timing.sc_busy_cycles) == 1

    def test_decoupling_does_not_change_l2(self, replayer, tiny_trace):
        coupled = replayer.run(
            tiny_trace, DTexLConfig(name="c", grouping="CG-square")
        )
        decoupled = replayer.run(
            tiny_trace,
            DTexLConfig(name="d", grouping="CG-square", decoupled=True),
        )
        assert coupled.l2_accesses == decoupled.l2_accesses

    def test_decoupling_helps_cg_runtime(self, replayer, tiny_trace):
        coupled = replayer.run(
            tiny_trace, DTexLConfig(name="c", grouping="CG-square")
        )
        decoupled = replayer.run(
            tiny_trace,
            DTexLConfig(name="d", grouping="CG-square", decoupled=True),
        )
        assert decoupled.frame_cycles < coupled.frame_cycles

    def test_fg_balances_quads_better_than_cg(
        self, small_config, small_game_trace
    ):
        """On a real game frame (clustered overdraw), coarse grouping is
        worse-balanced than the fine-grained baseline — Figures 12/15."""
        from repro.stats import per_tile_imbalance

        replayer = TraceReplayer(small_config)
        fg = replayer.run(small_game_trace, BASELINE)
        cg = replayer.run(
            small_game_trace, PAPER_CONFIGURATIONS["CG-square-coupled"]
        )
        fg_imbalance = per_tile_imbalance(fg.per_tile_quad_counts)
        cg_imbalance = per_tile_imbalance(cg.per_tile_quad_counts)
        assert cg_imbalance > 1.5 * fg_imbalance


class TestTileOrderEffects:
    def test_orders_visit_same_work(self, replayer, tiny_trace):
        results = [
            replayer.run(
                tiny_trace,
                DTexLConfig(name=o, grouping="CG-square", order=o),
            )
            for o in ("scanline", "zorder", "hilbert", "sorder")
        ]
        assert len({r.total_quads for r in results}) == 1
        assert len({r.l1_accesses for r in results}) == 1


class TestFramebufferTraffic:
    def test_write_lines_cover_every_tile(self, replayer, tiny_trace, tiny_config):
        result = replayer.run(tiny_trace, BASELINE)
        tile_lines = (
            tiny_config.tile_size ** 2 * tiny_config.color_bytes_per_pixel + 63
        ) // 64
        assert result.framebuffer_write_lines == (
            tiny_config.num_tiles * tile_lines
        )

    def test_write_traffic_schedule_independent(self, replayer, tiny_trace):
        from repro.core.dtexl import DTEXL_BEST

        base = replayer.run(tiny_trace, BASELINE)
        dtexl = replayer.run(tiny_trace, DTEXL_BEST)
        assert base.framebuffer_write_lines == dtexl.framebuffer_write_lines
