"""Tests for fault-isolated sweeps, retries, budgets and manifests."""

import json

import pytest

from repro.core.dtexl import BASELINE, DTexLConfig
from repro.sim.checkpoint import read_manifest
from repro.errors import BudgetExceededError, ReplayError, ReproError
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.sim.replay import TraceReplayer
from repro.sim.resilience import (
    FailureRecord,
    ReplayBudget,
    RetryPolicy,
    run_guarded,
)
from repro.sim.sweep import DesignSweep, failures_to_csv, rows_to_csv


class FlakyRunner(ExperimentRunner):
    """Fails a chosen design point a fixed number of times, then works."""

    def __init__(self, *args, flaky_design="", failures_left=0,
                 transient=True, **kwargs):
        super().__init__(*args, **kwargs)
        self.flaky_design = flaky_design
        self.failures_left = failures_left
        self.transient = transient

    def run(self, alias, design):
        if design.name == self.flaky_design and self.failures_left > 0:
            self.failures_left -= 1
            raise ReproError("injected flake", transient=self.transient)
        return super().run(alias, design)


#: A grid whose third grouping cannot be resolved: its design points
#: crash inside the replay, exercising the per-point error boundary.
BAD_GROUPING = "no-such-grouping"


def make_sweep(groupings):
    return DesignSweep(
        groupings=groupings,
        assignments=["const"],
        orders=["zorder"],
        decoupled=[True],
    )


class TestRunGuarded:
    def test_success_passes_through(self):
        result, failure = run_guarded(lambda: 42, design_point="p")
        assert result == 42 and failure is None

    def test_failure_is_recorded(self):
        def boom():
            raise ReplayError("broken")

        result, failure = run_guarded(boom, design_point="p", game="SWa")
        assert result is None
        assert failure == FailureRecord(
            design_point="p", game="SWa", error_type="ReplayError",
            message="broken", attempts=1,
        )

    def test_transient_failures_are_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ReproError("flake", transient=True)
            return "ok"

        result, failure = run_guarded(
            flaky, design_point="p", policy=RetryPolicy(max_retries=2)
        )
        assert result == "ok" and failure is None
        assert len(calls) == 3

    def test_deterministic_failures_are_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ReplayError("always")

        _, failure = run_guarded(
            broken, design_point="p", policy=RetryPolicy(max_retries=5)
        )
        assert len(calls) == 1
        assert failure.attempts == 1

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_guarded(interrupted, design_point="p")


class TestFaultIsolatedSuite:
    def test_mid_suite_failure_yields_row_not_abort(self, tiny_config):
        runner = FlakyRunner(
            tiny_config, games=["SWa", "GTr"],
            flaky_design="baseline", failures_left=1, transient=False,
        )
        suite = runner.run_suite(BASELINE, isolate_faults=True)
        assert [f.game for f in suite.failures] == ["SWa"]
        assert suite.failures[0].error_type == "ReproError"
        assert list(suite.per_game) == ["GTr"]  # the suite kept going

    def test_fail_fast_stops_after_first_game(self, tiny_config):
        runner = FlakyRunner(
            tiny_config, games=["SWa", "GTr"],
            flaky_design="baseline", failures_left=99, transient=False,
        )
        suite = runner.run_suite(BASELINE, isolate_faults=True, fail_fast=True)
        assert len(suite.failures) == 1
        assert suite.per_game == {}


class TestSuiteComparisonErrors:
    def test_mismatched_game_lists(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        candidate = runner.run_suite(BASELINE)
        empty_baseline = SuiteResult(design_point="base")
        with pytest.raises(ReplayError, match="was not run over game"):
            candidate.mean_speedup_vs(empty_baseline)
        with pytest.raises(ReplayError, match="was not run over game"):
            candidate.mean_l2_decrease_vs(empty_baseline)

    def test_empty_candidate(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        baseline = runner.run_suite(BASELINE)
        empty = SuiteResult(design_point="empty")
        with pytest.raises(ReplayError, match="no per-game results"):
            empty.mean_speedup_vs(baseline)


class TestBudget:
    def test_quad_budget_kills_replay(self, tiny_config, tiny_trace):
        replayer = TraceReplayer(
            tiny_config, budget=ReplayBudget(max_quads=1)
        )
        with pytest.raises(BudgetExceededError, match="quad budget"):
            replayer.run(tiny_trace, BASELINE)

    def test_cycle_budget_kills_replay(self, tiny_config, tiny_trace):
        replayer = TraceReplayer(
            tiny_config, budget=ReplayBudget(max_cycles=1)
        )
        with pytest.raises(BudgetExceededError, match="cycle budget"):
            replayer.run(tiny_trace, BASELINE)

    def test_generous_budget_is_silent(self, tiny_config, tiny_trace):
        replayer = TraceReplayer(
            tiny_config, budget=ReplayBudget(max_quads=10**9, max_cycles=10**12)
        )
        unbounded = TraceReplayer(tiny_config).run(tiny_trace, BASELINE)
        assert replayer.run(tiny_trace, BASELINE) == unbounded


class TestFaultIsolatedSweep:
    def test_one_bad_point_of_four(self, tiny_config):
        """The acceptance scenario: 4 points, 1 fails, 3 survive intact."""
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        grid = ["FG-xshift2", "CG-square", BAD_GROUPING, "CG-yrect"]
        report = make_sweep(grid).run(runner)
        assert len(report.failures) == 1
        assert report.failures[0].design_point == (
            f"{BAD_GROUPING}/const/zorder/dec"
        )
        assert report.failures[0].game == "SWa"
        assert report.outcome == "partial"

        clean = make_sweep(
            ["FG-xshift2", "CG-square", "CG-yrect"]
        ).run(ExperimentRunner(tiny_config, games=["SWa"]))
        assert clean.outcome == "success"
        assert report.rows == clean.rows

    def test_failures_csv(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        report = make_sweep(["FG-xshift2", BAD_GROUPING]).run(runner)
        text = failures_to_csv(report.failures)
        assert text.startswith("design_point,game,error_type,message,attempts")
        assert BAD_GROUPING in text

    def test_transient_point_recovers_with_retries(self, tiny_config):
        flaky_name = "CG-square/const/zorder/dec"
        runner = FlakyRunner(
            tiny_config, games=["SWa"],
            flaky_design=flaky_name, failures_left=1,
        )
        report = make_sweep(["FG-xshift2", "CG-square"]).run(
            runner, retry_policy=RetryPolicy(max_retries=1)
        )
        assert report.failures == []
        assert len(report.rows) == 2

    def test_transient_point_fails_without_retries(self, tiny_config):
        flaky_name = "CG-square/const/zorder/dec"
        runner = FlakyRunner(
            tiny_config, games=["SWa"],
            flaky_design=flaky_name, failures_left=1,
        )
        report = make_sweep(["FG-xshift2", "CG-square"]).run(runner)
        assert [f.design_point for f in report.failures] == [flaky_name]

    def test_baseline_failure_is_fatal(self, tiny_config):
        runner = FlakyRunner(
            tiny_config, games=["SWa"],
            flaky_design="baseline", failures_left=99, transient=False,
        )
        with pytest.raises(ReproError):
            make_sweep(["FG-xshift2"]).run(runner)


class TestResume:
    def test_killed_campaign_resumes_without_rerendering(
        self, tmp_path, tiny_config
    ):
        ckpt = tmp_path / "ckpt"
        # "Killed midway": the first run only covers half the grid.
        first = ExperimentRunner(tiny_config, games=["SWa"])
        partial = make_sweep(["FG-xshift2", "CG-square"]).run(
            first, checkpoint_dir=ckpt
        )
        assert first.renders_performed == 1

        # The re-run extends to the full grid and resumes.
        second = ExperimentRunner(tiny_config, games=["SWa"])
        full = make_sweep(
            ["FG-xshift2", "CG-square", "CG-yrect"]
        ).run(second, checkpoint_dir=ckpt, resume=True)
        assert second.renders_performed == 0  # the render-count probe
        assert full.resumed == [r.grouping + "/const/zorder/dec"
                                for r in partial.rows]

        # Identical final CSV to an uninterrupted run of the full grid.
        fresh = make_sweep(
            ["FG-xshift2", "CG-square", "CG-yrect"]
        ).run(ExperimentRunner(tiny_config, games=["SWa"]))
        assert rows_to_csv(full.rows) == rows_to_csv(fresh.rows)

    def test_fully_resumed_campaign_does_no_work(self, tmp_path, tiny_config):
        ckpt = tmp_path / "ckpt"
        grid = ["FG-xshift2", "CG-square"]
        make_sweep(grid).run(
            ExperimentRunner(tiny_config, games=["SWa"]), checkpoint_dir=ckpt
        )
        rerun = ExperimentRunner(tiny_config, games=["SWa"])
        report = make_sweep(grid).run(
            rerun, checkpoint_dir=ckpt, resume=True
        )
        assert rerun.renders_performed == 0
        assert len(report.resumed) == 2
        assert len(report.rows) == 2

    def test_without_resume_flag_rows_are_recomputed(
        self, tmp_path, tiny_config
    ):
        ckpt = tmp_path / "ckpt"
        grid = ["FG-xshift2"]
        make_sweep(grid).run(
            ExperimentRunner(tiny_config, games=["SWa"]), checkpoint_dir=ckpt
        )
        rerun = ExperimentRunner(tiny_config, games=["SWa"])
        report = make_sweep(grid).run(rerun, checkpoint_dir=ckpt)
        assert report.resumed == []
        # Traces still come from the store even without row resume.
        assert rerun.renders_performed == 0


class TestManifest:
    def test_manifest_written_and_readable(self, tmp_path, tiny_config):
        ckpt = tmp_path / "ckpt"
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        report = make_sweep(["FG-xshift2", BAD_GROUPING]).run(
            runner, checkpoint_dir=ckpt
        )
        payload = read_manifest(ckpt / "manifest.json")
        assert payload["outcome"] == "partial"
        assert payload["games"] == ["SWa"]
        assert payload["design_points_attempted"] == [
            "FG-xshift2/const/zorder/dec",
            f"{BAD_GROUPING}/const/zorder/dec",
        ]
        assert payload["design_points_succeeded"] == [
            "FG-xshift2/const/zorder/dec"
        ]
        assert payload["design_points_failed"] == [
            f"{BAD_GROUPING}/const/zorder/dec"
        ]
        assert payload["failures"][0]["error_type"]
        assert payload["wall_time_s"] >= 0.0
        assert report.manifest.as_dict() == payload
        assert read_manifest(ckpt / "absent.json") is None

    def test_manifest_outcomes(self, tiny_config):
        runner = ExperimentRunner(tiny_config, games=["SWa"])
        success = make_sweep(["FG-xshift2"]).run(runner)
        assert success.manifest.outcome == "success"
        fatal = make_sweep([BAD_GROUPING]).run(runner)
        assert fatal.manifest.outcome == "fatal"
