"""Tests for the reuse-distance analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import (
    ReuseProfile,
    per_core_reuse_profiles,
    reuse_profile,
)
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS


class TestReuseProfile:
    def test_empty_stream(self):
        profile = reuse_profile([])
        assert profile.total_accesses == 0
        assert profile.hit_rate(100) == 0.0

    def test_all_cold(self):
        profile = reuse_profile([1, 2, 3, 4])
        assert profile.cold_accesses == 4
        assert profile.histogram == {}

    def test_immediate_reuse_distance_zero(self):
        profile = reuse_profile([7, 7])
        assert profile.histogram == {0: 1}

    def test_known_distances(self):
        # a b c a: the second 'a' saw 2 distinct lines (b, c).
        profile = reuse_profile(["a", "b", "c", "a"])
        assert profile.histogram == {2: 1}
        assert profile.cold_accesses == 3

    def test_distance_counts_distinct_not_total(self):
        # a b b b a: only ONE distinct line between the two a's.
        profile = reuse_profile(["a", "b", "b", "b", "a"])
        assert profile.histogram[1] == 1
        assert profile.histogram[0] == 2

    def test_hit_rate_matches_lru_capacity(self):
        # a b a with capacity 2: second 'a' hits (distance 1 < 2).
        profile = reuse_profile(["a", "b", "a"])
        assert profile.hit_rate(2) == pytest.approx(1 / 3)
        assert profile.hit_rate(1) == 0.0

    def test_mean_distance(self):
        profile = reuse_profile(["a", "b", "a", "b"])
        assert profile.mean_distance() == pytest.approx(1.0)

    def test_working_set(self):
        # Reuses at distances 0 and 4.
        profile = reuse_profile(["a", "a", "b", "c", "d", "e", "a"])
        assert profile.working_set(coverage=0.5) == 1
        assert profile.working_set(coverage=1.0) == 5

    def test_working_set_no_reuse(self):
        assert reuse_profile([1, 2, 3]).working_set() == 0

    def test_merge(self):
        a = reuse_profile(["x", "x"])
        b = reuse_profile(["y", "z", "y"])
        merged = a.merge(b)
        assert merged.total_accesses == 5
        assert merged.cold_accesses == 3
        assert merged.histogram == {0: 1, 1: 1}


class TestReuseProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_accounting_always_consistent(self, stream):
        profile = reuse_profile(stream)
        reused = sum(profile.histogram.values())
        assert profile.cold_accesses + reused == len(stream)
        assert profile.cold_accesses == len(set(stream))

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_monotone_in_capacity(self, stream):
        profile = reuse_profile(stream)
        rates = [profile.hit_rate(c) for c in (1, 2, 4, 8, 16, 64)]
        assert rates == sorted(rates)

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_matches_simulated_lru(self, stream):
        """The profile's prediction equals a real fully-assoc LRU."""
        from collections import OrderedDict

        capacity = 4
        cache = OrderedDict()
        hits = 0
        for line in stream:
            if line in cache:
                cache.move_to_end(line)
                hits += 1
            else:
                if len(cache) >= capacity:
                    cache.popitem(last=False)
            cache[line] = None
        profile = reuse_profile(stream)
        expected = hits / len(stream) if stream else 0.0
        assert profile.hit_rate(capacity) == pytest.approx(expected)


class TestPerCoreProfiles:
    def test_cg_compresses_reuse_distances(self, tiny_config, tiny_trace):
        """The DTexL thesis, in reuse-distance form: coarse grouping
        yields shorter per-core reuse distances than fine-grained."""
        fg = BASELINE.build_scheduler(tiny_config)
        cg = PAPER_CONFIGURATIONS["CG-square-coupled"].build_scheduler(
            tiny_config
        )
        fg_profiles = per_core_reuse_profiles(tiny_trace, fg)
        cg_profiles = per_core_reuse_profiles(tiny_trace, cg)
        l1_lines = tiny_config.texture_cache.num_lines
        fg_hit = sum(p.hit_rate(l1_lines) for p in fg_profiles) / 4
        cg_hit = sum(p.hit_rate(l1_lines) for p in cg_profiles) / 4
        assert cg_hit > fg_hit

    def test_streams_cover_all_lines(self, tiny_config, tiny_trace):
        profiles = per_core_reuse_profiles(
            tiny_trace, BASELINE.build_scheduler(tiny_config)
        )
        total = sum(p.total_accesses for p in profiles)
        assert total == tiny_trace.total_texture_lines
