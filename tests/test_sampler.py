"""Tests for the texture samplers and LOD computation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.sampler import FilterMode, Sampler, compute_lod
from repro.texture.texture import Texture

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.fixture
def texture():
    return Texture(0, 256, 256, base_address=1 << 20)


class TestComputeLod:
    def test_one_texel_per_pixel_is_lod_zero(self):
        lod = compute_lod(1 / 256, 0, 0, 1 / 256, 256, 256)
        assert lod == pytest.approx(0.0, abs=1e-9)

    def test_two_texels_per_pixel_is_lod_one(self):
        lod = compute_lod(2 / 256, 0, 0, 2 / 256, 256, 256)
        assert lod == pytest.approx(1.0)

    def test_magnification_clamps_to_zero(self):
        lod = compute_lod(0.1 / 256, 0, 0, 0.1 / 256, 256, 256)
        assert lod == 0.0

    def test_anisotropic_uses_major_axis(self):
        lod = compute_lod(4 / 256, 0, 0, 1 / 256, 256, 256)
        assert lod == pytest.approx(2.0)


class TestFootprints:
    def test_nearest_touches_one_line(self, texture):
        sampler = Sampler(FilterMode.NEAREST)
        fp = sampler.footprint(texture, 0.5, 0.5)
        assert fp.line_count == 1
        assert fp.texel_count == 1

    def test_bilinear_touches_four_texels(self, texture):
        sampler = Sampler(FilterMode.BILINEAR)
        fp = sampler.footprint(texture, 0.37, 0.64)
        assert fp.texel_count == 4
        assert 1 <= fp.line_count <= 4

    def test_bilinear_at_block_center_one_line(self, texture):
        """A sample well inside a 4x4 Morton block stays in one line."""
        sampler = Sampler(FilterMode.BILINEAR)
        # Texel (1.5, 1.5): neighbourhood {1,2}x{1,2}, inside block 0.
        fp = sampler.footprint(texture, 2.0 / 256, 2.0 / 256)
        assert fp.line_count == 1

    def test_trilinear_doubles_texels_between_levels(self, texture):
        sampler = Sampler(FilterMode.TRILINEAR)
        fp = sampler.footprint(texture, 0.3, 0.3, lod=1.5)
        assert fp.texel_count == 8

    def test_trilinear_at_integer_lod_single_level(self, texture):
        sampler = Sampler(FilterMode.TRILINEAR)
        fp = sampler.footprint(texture, 0.3, 0.3, lod=1.0)
        assert fp.texel_count == 4

    def test_anisotropic_probes(self, texture):
        sampler = Sampler(FilterMode.ANISOTROPIC, max_anisotropy=4)
        fp = sampler.footprint(texture, 0.5, 0.5, lod=3.0)
        assert fp.texel_count == 16

    def test_rejects_bad_anisotropy(self):
        with pytest.raises(ValueError):
            Sampler(max_anisotropy=0)

    def test_lod_clamped_to_chain(self, texture):
        sampler = Sampler(FilterMode.BILINEAR)
        fp = sampler.footprint(texture, 0.5, 0.5, lod=99.0)
        assert fp.line_count >= 1

    def test_lines_unique_and_ordered(self, texture):
        sampler = Sampler(FilterMode.TRILINEAR)
        fp = sampler.footprint(texture, 0.41, 0.77, lod=2.3)
        assert len(set(fp.lines)) == len(fp.lines)

    @given(unit, unit)
    @settings(max_examples=50, deadline=None)
    def test_footprint_never_empty(self, u, v):
        texture = Texture(0, 64, 64, base_address=1 << 20)
        sampler = Sampler(FilterMode.BILINEAR)
        assert sampler.footprint(texture, u, v).line_count >= 1

    @given(unit, unit)
    @settings(max_examples=50, deadline=None)
    def test_adjacent_pixels_share_lines(self, u, v):
        """Spatial locality: samples one texel apart overlap in lines."""
        texture = Texture(0, 256, 256, base_address=1 << 20)
        sampler = Sampler(FilterMode.BILINEAR)
        a = set(sampler.footprint(texture, u, v).lines)
        b = set(sampler.footprint(texture, u + 1.0 / 256, v).lines)
        assert a & b


class TestSampleColor:
    def test_color_in_unit_range(self, texture):
        sampler = Sampler()
        color = sampler.sample_color(texture, 0.123, 0.456)
        assert all(0.0 <= c <= 1.0 for c in color)

    def test_color_at_texel_center_matches_texel(self, texture):
        sampler = Sampler()
        u = (10 + 0.5) / 256
        v = (20 + 0.5) / 256
        expected = tuple(c / 255.0 for c in texture.texel_value(10, 20))
        assert sampler.sample_color(texture, u, v) == pytest.approx(expected)

    def test_deterministic(self, texture):
        sampler = Sampler()
        assert sampler.sample_color(texture, 0.3, 0.9) == sampler.sample_color(
            texture, 0.3, 0.9
        )
