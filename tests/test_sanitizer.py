"""The runtime :class:`TraceSanitizer`: clean replays pass, mutants fail.

A known-good trace/replay pair must sanitize clean for every barrier
architecture (baseline, decoupled DTexL, the single-SC upper bound); a
trace or result corrupted in any of the five mutation classes the issue
names — dropped quad, negative cycles, misses exceeding accesses,
tampered checkpoint hash, broken barrier ordering — must be caught with
a pointer to the violated invariant.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.lint import TraceSanitizer, Violation, trace_digest
from repro.cli import main
from repro.core.dtexl import BASELINE, DTEXL_BEST, PAPER_CONFIGURATIONS
from repro.errors import InvariantViolationError
from repro.sim.replay import TraceReplayer

UPPER_BOUND = PAPER_CONFIGURATIONS["upper-bound"]


@pytest.fixture()
def baseline_result(tiny_config, tiny_trace):
    return TraceReplayer(tiny_config).run(tiny_trace, BASELINE)


def violated(violations):
    """The set of invariant families a check() call reported."""
    return {v.invariant for v in violations}


# -- known-good replays -------------------------------------------------------


class TestCleanReplays:
    @pytest.mark.parametrize(
        "design", [BASELINE, DTEXL_BEST, UPPER_BOUND], ids=lambda d: d.name
    )
    def test_replay_sanitizes_clean(self, tiny_config, tiny_trace, design):
        result = TraceReplayer(tiny_config).run(tiny_trace, design)
        sanitizer = TraceSanitizer(tiny_config)
        assert sanitizer.check(tiny_trace, result, design) == []
        sanitizer.sanitize(tiny_trace, result, design)  # must not raise

    def test_game_suite_replay_sanitizes_clean(
        self, small_config, small_game_trace
    ):
        """A real suite game validates end to end, digest included."""
        result = TraceReplayer(small_config).run(small_game_trace, DTEXL_BEST)
        violations = TraceSanitizer(small_config).check(
            small_game_trace, result, DTEXL_BEST,
            expected_digest=trace_digest(small_game_trace),
        )
        assert violations == []

    def test_digest_is_deterministic(self, tiny_trace):
        assert trace_digest(tiny_trace) == trace_digest(
            copy.deepcopy(tiny_trace)
        )
        assert len(trace_digest(tiny_trace)) == 64


# -- the five mutation classes ------------------------------------------------


class TestMutations:
    def test_dropped_quad_is_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(tiny_trace)
        tile = next(
            t for t, entry in sorted(mutated.tiles.items()) if entry.quads
        )
        mutated.tiles[tile].quads.pop()
        violations = TraceSanitizer(tiny_config).check(
            mutated, baseline_result, BASELINE
        )
        assert "quad-conservation" in violated(violations)
        with pytest.raises(InvariantViolationError) as excinfo:
            TraceSanitizer(tiny_config).sanitize(
                mutated, baseline_result, BASELINE
            )
        assert excinfo.value.invariant in violated(violations)

    def test_negative_cycles_are_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(baseline_result)
        mutated.timing.total_cycles = -1
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, BASELINE
        )
        assert "cycle-monotonicity" in violated(violations)

    def test_issue_exceeding_busy_is_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(baseline_result)
        mutated.timing.sc_issue_cycles[0] = (
            mutated.timing.sc_busy_cycles[0] + 10
        )
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, BASELINE
        )
        assert violated(violations) == {"cycle-monotonicity"}

    def test_misses_exceeding_accesses_are_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(baseline_result)
        mutated.l1_misses = mutated.l1_accesses + 1
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, BASELINE
        )
        assert "counter-consistency" in violated(violations)

    def test_phantom_dram_fill_is_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(baseline_result)
        mutated.dram_accesses += 1
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, BASELINE
        )
        assert violated(violations) == {"counter-consistency"}
        with pytest.raises(InvariantViolationError) as excinfo:
            TraceSanitizer(tiny_config).sanitize(
                tiny_trace, mutated, BASELINE
            )
        assert excinfo.value.invariant == "counter-consistency"

    def test_tampered_checkpoint_hash_is_caught(
        self, tiny_config, tiny_trace, baseline_result
    ):
        expected = trace_digest(tiny_trace)
        mutated = copy.deepcopy(tiny_trace)
        tile = sorted(mutated.tiles)[0]
        # A plausible-looking tweak: structure intact, content changed.
        mutated.tiles[tile].fetch_cycles += 1
        violations = TraceSanitizer(tiny_config).check(
            mutated, baseline_result, BASELINE, expected_digest=expected
        )
        assert "checkpoint-hash" in violated(violations)
        # The untampered trace still agrees with its own digest.
        assert TraceSanitizer(tiny_config).check(
            tiny_trace, baseline_result, BASELINE, expected_digest=expected
        ) == []

    def test_barrier_order_violation_is_caught(
        self, tiny_config, tiny_trace
    ):
        design = DTEXL_BEST
        result = TraceReplayer(tiny_config).run(tiny_trace, design)
        mutated = copy.deepcopy(result)
        ends = mutated.timing.per_tile_stage_ends
        assert ends, "decoupled replays must record stage completions"
        # Early-Z now "completes" after Blending on the first unit.
        ends[0][0][0] = ends[0][2][0] + 7
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, design
        )
        assert "barrier-ordering" in violated(violations)

    def test_negative_stage_completion_is_caught(
        self, tiny_config, tiny_trace
    ):
        design = DTEXL_BEST
        result = TraceReplayer(tiny_config).run(tiny_trace, design)
        mutated = copy.deepcopy(result)
        mutated.timing.per_tile_stage_ends[0][1][0] = -3
        violations = TraceSanitizer(tiny_config).check(
            tiny_trace, mutated, design
        )
        assert "barrier-ordering" in violated(violations)


# -- reporting ----------------------------------------------------------------


class TestReporting:
    def test_violation_str_names_the_invariant(self):
        violation = Violation("quad-conservation", "3 quads went missing")
        assert str(violation) == "[quad-conservation] 3 quads went missing"

    def test_error_message_lists_every_violation(
        self, tiny_config, tiny_trace, baseline_result
    ):
        mutated = copy.deepcopy(baseline_result)
        mutated.l1_misses = mutated.l1_accesses + 1
        mutated.timing.total_cycles = -1
        with pytest.raises(InvariantViolationError) as excinfo:
            TraceSanitizer(tiny_config).sanitize(
                tiny_trace, mutated, BASELINE
            )
        message = str(excinfo.value)
        assert "cycle-monotonicity" in message
        assert "counter-consistency" in message
        assert excinfo.value.invariant  # first violated family is named


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_sanitize_clean_game_exits_zero(self, capsys):
        exit_code = main([
            "sanitize", "GTr", "--screen", "128x64", "--json",
            "-d", "baseline", "-d", "HLB-flp2",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["trace_digest"]) == 64
        assert [row["ok"] for row in payload["designs"]] == [True, True]
        assert all(row["violations"] == [] for row in payload["designs"])
