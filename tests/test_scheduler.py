"""Tests for the quad scheduler (grouping + assignment + tile order)."""

import pytest

from repro.config import GPUConfig
from repro.core.quad_grouping import get_grouping
from repro.core.scheduler import QuadScheduler
from repro.core.subtile_assignment import get_assignment


@pytest.fixture
def config():
    return GPUConfig(screen_width=128, screen_height=64)  # 4x2 tiles


def make_scheduler(config, grouping="CG-square", assignment="flp1",
                   order="hilbert"):
    return QuadScheduler(
        config=config,
        grouping=get_grouping(grouping),
        assignment=get_assignment(assignment),
        order_name=order,
    )


class TestStructure:
    def test_covers_all_tiles(self, config):
        scheduler = make_scheduler(config)
        assert scheduler.num_steps == config.num_tiles
        assert len(set(scheduler.tiles)) == config.num_tiles

    def test_step_of_inverts_tiles(self, config):
        scheduler = make_scheduler(config)
        for step, tile in enumerate(scheduler.tiles):
            assert scheduler.step_of(tile) == step

    def test_core_of_composes_slot_and_permutation(self, config):
        scheduler = make_scheduler(config)
        side = config.quads_per_tile_side
        for step in (0, 3, 5):
            perm = scheduler.permutation_at(step)
            for qx, qy in [(0, 0), (side - 1, 0), (3, 7)]:
                slot = scheduler.slot_of(qx, qy)
                assert scheduler.core_of(step, qx, qy) == perm[slot]

    def test_core_map_matches_core_of(self, config):
        scheduler = make_scheduler(config)
        grid = scheduler.core_map(2)
        assert grid[5][3] == scheduler.core_of(2, 3, 5)

    def test_const_assignment_keeps_slots_as_cores(self, config):
        scheduler = make_scheduler(config, assignment="const")
        side = config.quads_per_tile_side
        for step in range(scheduler.num_steps):
            assert scheduler.core_of(step, 0, 0) == scheduler.slot_of(0, 0)
            assert scheduler.core_of(step, side - 1, side - 1) == (
                scheduler.slot_of(side - 1, side - 1)
            )


class TestQuadCounts:
    def test_counts_sum_to_occupied(self, config):
        scheduler = make_scheduler(config)
        occupied = [(0, 0), (1, 0), (15, 15), (8, 8), (3, 12)]
        counts = scheduler.quad_counts_per_core(0, occupied)
        assert sum(counts) == len(occupied)
        assert len(counts) == config.num_shader_cores

    def test_full_tile_balances_exactly(self, config):
        scheduler = make_scheduler(config)
        side = config.quads_per_tile_side
        occupied = [(qx, qy) for qx in range(side) for qy in range(side)]
        counts = scheduler.quad_counts_per_core(0, occupied)
        assert counts == [side * side // 4] * 4

    def test_clustered_quads_imbalance_cg(self, config):
        """A corner cluster lands on one SC under CG-square."""
        scheduler = make_scheduler(config, grouping="CG-square")
        occupied = [(qx, qy) for qx in range(4) for qy in range(4)]
        counts = scheduler.quad_counts_per_core(0, occupied)
        assert max(counts) == len(occupied)

    def test_clustered_quads_balanced_fg(self, config):
        """The same cluster spreads under FG-xshift2."""
        scheduler = make_scheduler(config, grouping="FG-xshift2")
        occupied = [(qx, qy) for qx in range(4) for qy in range(4)]
        counts = scheduler.quad_counts_per_core(0, occupied)
        assert max(counts) - min(counts) <= len(occupied) // 4
