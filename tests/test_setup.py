"""Tests for triangle setup and the ScreenPrimitive geometry helpers."""

import pytest

from repro.geometry.mesh import ShaderProgram
from repro.geometry.primitive_assembly import Primitive
from repro.geometry.vec import Vec2, Vec3, Vec4
from repro.geometry.vertex_stage import TransformedVertex
from repro.raster.setup import setup_primitive


def clip_primitive_from_ndc(points, uvs=None, pid=0):
    """Build a primitive whose clip coords equal the given NDC (w=1)."""
    uvs = uvs or [(0, 0), (1, 0), (0, 1)]
    vertices = tuple(
        TransformedVertex(
            clip_position=Vec4(x, y, z, 1.0),
            uv=Vec2(*uv),
            color=Vec3(1, 1, 1),
        )
        for (x, y, z), uv in zip(points, uvs)
    )
    return Primitive(
        primitive_id=pid, vertices=vertices, texture_id=0,
        shader=ShaderProgram(),
    )


class TestSetup:
    def test_ndc_corners_map_to_screen(self):
        prim = clip_primitive_from_ndc(
            [(-1, 1, 0), (1, 1, 0), (-1, -1, 0)]
        )
        screen = setup_primitive(prim, 100, 50)
        a, b, c = screen.vertices
        assert (a.x, a.y) == (0.0, 0.0)
        assert (b.x, b.y) == (100.0, 0.0)
        assert (c.x, c.y) == (0.0, 50.0)

    def test_depth_mapped_to_unit_range(self):
        prim = clip_primitive_from_ndc(
            [(-1, 1, -1), (1, 1, 0), (-1, -1, 1)]
        )
        screen = setup_primitive(prim, 100, 50)
        assert screen.vertices[0].z == 0.0
        assert screen.vertices[1].z == 0.5
        assert screen.vertices[2].z == 1.0

    def test_attributes_divided_by_w(self):
        vertices = tuple(
            TransformedVertex(
                clip_position=Vec4(0, 0, 0, w), uv=Vec2(1.0, 2.0),
                color=Vec3(0.5, 0.5, 0.5),
            )
            for w in (1.0, 2.0, 4.0)
        )
        prim = Primitive(
            primitive_id=0, vertices=vertices, texture_id=0,
            shader=ShaderProgram(),
        )
        screen = setup_primitive(prim, 10, 10)
        assert screen.vertices[1].inv_w == pytest.approx(0.5)
        assert screen.vertices[1].u_over_w == pytest.approx(0.5)
        assert screen.vertices[2].v_over_w == pytest.approx(0.5)

    def test_area2_sign_tracks_winding(self):
        ccw = clip_primitive_from_ndc([(-1, -1, 0), (1, -1, 0), (0, 1, 0)])
        cw = clip_primitive_from_ndc([(-1, -1, 0), (0, 1, 0), (1, -1, 0)])
        a = setup_primitive(ccw, 10, 10).area2
        b = setup_primitive(cw, 10, 10).area2
        assert a * b < 0


class TestBBoxAndOverlap:
    def make_screen_tri(self):
        # Covers screen pixels roughly (0,0)-(50,25).
        prim = clip_primitive_from_ndc([(-1, 1, 0), (0, 1, 0), (-1, 0, 0)])
        return setup_primitive(prim, 100, 50)

    def test_bbox(self):
        screen = self.make_screen_tri()
        min_x, min_y, max_x, max_y = screen.bbox()
        assert (min_x, min_y) == (0.0, 0.0)
        assert (max_x, max_y) == (50.0, 25.0)

    def test_overlaps_containing_rect(self):
        screen = self.make_screen_tri()
        assert screen.overlaps_rect(0, 0, 100, 50)

    def test_rejects_far_rect(self):
        screen = self.make_screen_tri()
        assert not screen.overlaps_rect(60, 30, 100, 50)

    def test_rejects_rect_in_bbox_but_outside_triangle(self):
        """The corner of the bbox that the hypotenuse cuts away."""
        screen = self.make_screen_tri()
        assert not screen.overlaps_rect(45, 20, 50, 25)

    def test_accepts_rect_crossing_edge(self):
        screen = self.make_screen_tri()
        assert screen.overlaps_rect(20, 10, 30, 20)

    def test_primitive_id_passthrough(self):
        prim = clip_primitive_from_ndc(
            [(-1, 1, 0), (0, 1, 0), (-1, 0, 0)], pid=42
        )
        assert setup_primitive(prim, 10, 10).primitive_id == 42
