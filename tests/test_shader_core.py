"""Tests for the shader-core multithreaded timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ShaderConfig
from repro.shader.shader_core import ShaderCore, WarpCost


def core(max_warps=4, issue_rate=1):
    return ShaderCore(ShaderConfig(max_warps=max_warps, issue_rate=issue_rate))


class TestModel:
    def test_empty_subtile_is_free(self):
        result = core().execute_subtile([])
        assert result.total_cycles == 0
        assert result.num_warps == 0

    def test_single_warp_hides_nothing(self):
        result = core().execute_subtile([WarpCost(10, 30)])
        assert result.total_cycles == 40

    def test_full_occupancy_divides_stall(self):
        warps = [WarpCost(10, 40)] * 4
        result = core(max_warps=4).execute_subtile(warps)
        assert result.total_cycles == 40 + 160 // 4

    def test_hiding_capped_by_max_warps(self):
        warps = [WarpCost(10, 40)] * 16
        few = core(max_warps=2).execute_subtile(warps)
        many = core(max_warps=8).execute_subtile(warps)
        assert few.total_cycles > many.total_cycles

    def test_hiding_capped_by_warp_count(self):
        """Two warps can only hide as two, even with 8 slots."""
        warps = [WarpCost(10, 40)] * 2
        result = core(max_warps=8).execute_subtile(warps)
        assert result.total_cycles == 20 + 80 // 2

    def test_issue_rate_scales_compute(self):
        warps = [WarpCost(10, 0)] * 4
        slow = core(issue_rate=1).execute_subtile(warps)
        fast = core(issue_rate=2).execute_subtile(warps)
        assert fast.total_cycles == slow.total_cycles // 2

    def test_compute_only(self):
        result = core().execute_subtile([WarpCost(7, 0)] * 3)
        assert result.total_cycles == 21
        assert result.stall_cycles == 0

    def test_hidden_stall_accounting(self):
        warps = [WarpCost(10, 40)] * 4
        result = core(max_warps=4).execute_subtile(warps)
        assert result.hidden_stall_cycles == 160 - 40

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            WarpCost(-1, 0)


class TestAccounting:
    def test_busy_and_issue_cycles_accumulate(self):
        c = core()
        c.execute_subtile([WarpCost(10, 40)] * 4)
        c.execute_subtile([WarpCost(5, 0)])
        assert c.issue_cycles == 45
        assert c.busy_cycles > c.issue_cycles
        assert c.warps_executed == 5

    def test_reset(self):
        c = core()
        c.execute_subtile([WarpCost(10, 10)])
        c.reset()
        assert c.busy_cycles == 0
        assert c.issue_cycles == 0
        assert c.warps_executed == 0


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=500),
            ),
            max_size=50,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_bounded_by_serial_and_ideal(self, costs, max_warps):
        warps = [WarpCost(c, s) for c, s in costs]
        result = core(max_warps=max_warps).execute_subtile(warps)
        compute = sum(c for c, _ in costs)
        stall = sum(s for _, s in costs)
        assert result.total_cycles <= compute + stall
        assert result.total_cycles >= compute

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_stall(self, n):
        light = core(max_warps=4).execute_subtile([WarpCost(10, 10)] * n)
        heavy = core(max_warps=4).execute_subtile([WarpCost(10, 20)] * n)
        assert heavy.total_cycles >= light.total_cycles
