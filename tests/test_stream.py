"""Differential tests for the streaming tile dataflow.

The non-negotiable invariant of the render→replay seam refactor: the
three stream drivers (``batch``, ``streaming``, ``overlap``) produce
**bit-identical** :class:`RunResult`\\ s for the same frame and design
point — over the whole game suite, over randomized recipes, across
tile-traversal orders, and with or without the tile-granular chunk
cache.  The batch driver is the executable specification; the other two
only change *when* memory and time are spent.

Also covered here: the :class:`TileWorkUnit` protocol (vertex prologue
rides the first unit only), the :class:`TileChunkStore` hash chain
terminating in the trace digest, chunk-corruption self-healing, and the
overlap driver's crash/timeout surfacing.
"""

from __future__ import annotations

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.dtexl import BASELINE, DTEXL_BEST, DTexLConfig
from repro.errors import (
    ConfigError,
    ReplayError,
    TaskTimeoutError,
    TraceIntegrityError,
    WorkerCrashError,
)
from repro.sim.checkpoint import TileChunkStore, trace_digest
from repro.sim.driver import FrameRenderer
from repro.sim.experiment import ExperimentRunner
from repro.sim.replay import TraceReplayer
from repro.sim.stream import (
    STREAM_DRIVERS,
    BatchTileStream,
    FrameSource,
    OverlappedTileStream,
    StreamingTileStream,
    TileWorkUnit,
    check_driver,
)
from repro.workloads.games import GAMES, build_game, game_aliases
from repro.workloads.recipe import SceneRecipe

TINY = GPUConfig(screen_width=128, screen_height=64)

#: Orders that traverse the 4x2 grid differently, so production order
#: (scanline groups inside the render pass) never equals consumption
#: order by accident.
ORDER_POINTS = [
    BASELINE,
    DTEXL_BEST,
    DTexLConfig(name="probe-sorder", order="sorder", decoupled=True),
]


@pytest.fixture(scope="module")
def replayer():
    return TraceReplayer(TINY)


def batch_result(alias, design, replayer):
    workload = build_game(alias, TINY)
    trace, _ = FrameRenderer(TINY).render(workload)
    return replayer.run(trace, design), trace


def streaming_result(alias, design, replayer, chunk_store=None, group_size=5):
    workload = build_game(alias, TINY)
    stream = StreamingTileStream(
        FrameRenderer(TINY), workload,
        group_size=group_size, chunk_store=chunk_store,
    )
    return replayer.run_stream(stream, design), stream


def overlap_result(alias, design, replayer, **kwargs):
    source = FrameSource(config=TINY, recipe=GAMES[alias].recipe)
    stream = OverlappedTileStream(source, **kwargs)
    return replayer.run_stream(stream, design)


# -- driver equivalence ------------------------------------------------------


class TestDriverEquivalence:
    @pytest.mark.parametrize("alias", game_aliases())
    def test_streaming_matches_batch_all_games(self, alias, replayer):
        batch, _ = batch_result(alias, DTEXL_BEST, replayer)
        streamed, _ = streaming_result(alias, DTEXL_BEST, replayer)
        assert streamed == batch

    @pytest.mark.parametrize("alias", game_aliases())
    def test_overlap_matches_batch_all_games(self, alias, replayer):
        batch, _ = batch_result(alias, DTEXL_BEST, replayer)
        assert overlap_result(alias, DTEXL_BEST, replayer) == batch

    @pytest.mark.parametrize("design", ORDER_POINTS, ids=lambda d: d.name)
    def test_orders_agree_across_drivers(self, design, replayer):
        """Traversal order is the consumer's; producers must not care."""
        batch, _ = batch_result("GTr", design, replayer)
        streamed, _ = streaming_result("GTr", design, replayer, group_size=3)
        assert streamed == batch
        assert overlap_result("GTr", design, replayer, queue_depth=2) == batch

    @pytest.mark.parametrize("group_size", [0, 1, 3, 100])
    def test_group_size_never_changes_results(self, group_size, replayer):
        batch, _ = batch_result("SWa", BASELINE, replayer)
        streamed, _ = streaming_result(
            "SWa", BASELINE, replayer, group_size=group_size
        )
        assert streamed == batch

    def test_streaming_stats_match_batch_trace(self, replayer):
        _, trace = batch_result("SWa", BASELINE, replayer)
        _, stream = streaming_result("SWa", BASELINE, replayer)
        assert stream.stats == trace.stats
        assert stream.tiles_rendered == TINY.tiles_x * TINY.tiles_y


# -- randomized recipes ------------------------------------------------------


recipe_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "is_3d": st.booleans(),
        "depth_complexity": st.floats(min_value=0.5, max_value=3.0),
        "blend_fraction": st.floats(min_value=0.0, max_value=1.0),
        "texture_samples": st.integers(min_value=0, max_value=3),
    }
)


class TestRandomRecipes:
    @given(params=recipe_params)
    @settings(max_examples=10, deadline=None)
    def test_random_recipe_streaming_matches_batch(self, params):
        recipe = SceneRecipe(name="prop", texture_budget_mib=0.25, **params)
        workload = recipe.build(TINY)
        replayer = TraceReplayer(TINY)
        trace, _ = FrameRenderer(TINY).render(workload)
        batch = replayer.run(trace, DTEXL_BEST)
        stream = StreamingTileStream(
            FrameRenderer(TINY), recipe.build(TINY), group_size=2
        )
        assert replayer.run_stream(stream, DTEXL_BEST) == batch


# -- the unit protocol -------------------------------------------------------


class TestProtocol:
    def test_stream_driver_names(self):
        assert STREAM_DRIVERS == ("batch", "streaming", "overlap")
        for name in STREAM_DRIVERS:
            assert check_driver(name) == name

    def test_unknown_driver_rejected(self):
        with pytest.raises(ConfigError, match="unknown stream driver"):
            check_driver("lazy")

    @pytest.mark.parametrize("kind", ["batch", "streaming"])
    def test_vertex_prologue_rides_first_unit_only(self, kind, replayer):
        workload = build_game("SWa", TINY)
        trace, _ = FrameRenderer(TINY).render(workload)
        order = DTEXL_BEST.build_scheduler(TINY).tiles
        if kind == "batch":
            stream = BatchTileStream(trace)
        else:
            stream = StreamingTileStream(FrameRenderer(TINY), workload)
        with stream.open(order) as units:
            units = list(units)
        assert [unit.tile for unit in units] == list(order)
        assert [unit.step for unit in units] == list(range(len(order)))
        assert list(units[0].vertex_lines) == list(trace.vertex_lines)
        assert all(len(unit.vertex_lines) == 0 for unit in units[1:])

    def test_batch_stream_yields_empty_entries_for_bare_tiles(self):
        """A tile the trace never filed gets a default empty entry."""
        trace, _ = FrameRenderer(TINY).render(build_game("SWa", TINY))
        bare = (0, 0)
        del trace.tiles[bare]
        order = BASELINE.build_scheduler(TINY).tiles
        with BatchTileStream(trace).open(order) as units:
            for unit in units:
                assert isinstance(unit, TileWorkUnit)
                if unit.tile == bare:
                    assert len(unit.entry.fetch_lines) == 0
                    assert len(unit.entry.quads) == 0

    def test_overlap_requires_open(self):
        source = FrameSource(config=TINY, recipe=GAMES["SWa"].recipe)
        stream = OverlappedTileStream(source)
        with pytest.raises(ReplayError, match="open"):
            list(stream)

    def test_overlap_rejects_bad_queue_depth(self):
        source = FrameSource(config=TINY, recipe=GAMES["SWa"].recipe)
        with pytest.raises(ConfigError, match="queue_depth"):
            OverlappedTileStream(source, queue_depth=0)


# -- tile-granular chunk cache ----------------------------------------------


class TestChunkStore:
    def test_chunk_chain_terminates_in_trace_digest(self, tmp_path, replayer):
        """The store's sealed digest IS the batch trace digest."""
        batch, trace = batch_result("SWa", BASELINE, replayer)
        store = TileChunkStore(tmp_path / "chunks", "k1")
        streamed, stream = streaming_result(
            "SWa", BASELINE, replayer, chunk_store=store
        )
        assert streamed == batch
        assert store.digest() == trace_digest(trace)
        assert store.vertex_lines() == list(trace.vertex_lines)

    def test_second_replay_loads_every_chunk(self, tmp_path, replayer):
        store = TileChunkStore(tmp_path / "chunks", "k1")
        first, s1 = streaming_result(
            "SWa", DTEXL_BEST, replayer, chunk_store=store
        )
        assert s1.tiles_rendered == TINY.tiles_x * TINY.tiles_y
        second, s2 = streaming_result(
            "SWa", DTEXL_BEST, replayer,
            chunk_store=TileChunkStore(tmp_path / "chunks", "k1"),
        )
        assert second == first
        assert s2.tiles_rendered == 0

    def test_corrupt_chunk_self_heals(self, tmp_path, replayer):
        store = TileChunkStore(tmp_path / "chunks", "k1")
        first, _ = streaming_result(
            "SWa", BASELINE, replayer, chunk_store=store
        )
        victim = store.chunk_path((1, 1))
        payload = victim.read_bytes()
        victim.write_bytes(payload[: len(payload) // 2])
        healed_store = TileChunkStore(tmp_path / "chunks", "k1")
        healed, stream = streaming_result(
            "SWa", BASELINE, replayer, chunk_store=healed_store
        )
        assert healed == first
        assert stream.tiles_rendered == 1  # only the torn tile
        assert healed_store.load_tile((1, 1)) is not None  # re-chunked

    def test_tampered_frame_meta_is_caught(self, tmp_path, replayer):
        store = TileChunkStore(tmp_path / "chunks", "k1")
        streaming_result("SWa", BASELINE, replayer, chunk_store=store)
        meta = store.frame_meta()
        store.write_frame_meta(
            "0" * 64, meta["vertex_lines"],
            {}, meta["num_quads"], meta["pixels_shaded"],
        )
        with pytest.raises(TraceIntegrityError):
            streaming_result(
                "SWa", BASELINE, replayer,
                chunk_store=TileChunkStore(tmp_path / "chunks", "k1"),
            )

    def test_load_rejects_wrong_key(self, tmp_path, replayer):
        store = TileChunkStore(tmp_path / "chunks", "k1")
        streaming_result("SWa", BASELINE, replayer, chunk_store=store)
        other = TileChunkStore(tmp_path / "chunks", "k2")
        assert other.load_tile((0, 0)) is None
        assert other.digest() is None


# -- overlap fault surfacing -------------------------------------------------


class TestOverlapFaults:
    def test_killed_worker_raises_worker_crash(self, replayer):
        source = FrameSource(config=TINY, recipe=GAMES["SWa"].recipe)
        stream = OverlappedTileStream(source, queue_depth=1)
        order = BASELINE.build_scheduler(TINY).tiles
        with stream:
            stream.open(order)
            stream._process.kill()
            with pytest.raises(WorkerCrashError, match="died"):
                list(stream)

    def test_stalled_worker_raises_timeout(self, replayer):
        source = FrameSource(config=TINY, recipe=GAMES["SWa"].recipe)
        stream = OverlappedTileStream(source, queue_depth=1, timeout_s=0.5)
        order = BASELINE.build_scheduler(TINY).tiles
        with stream:
            stream.open(order)
            os.kill(stream._process.pid, signal.SIGSTOP)
            start = time.monotonic()
            with pytest.raises((TaskTimeoutError, WorkerCrashError)):
                list(stream)
            assert time.monotonic() - start < 10.0

    def test_errors_are_transient_flagged(self):
        """Both overlap failure modes must be retryable, like the pool's."""
        assert WorkerCrashError("x").transient
        assert TaskTimeoutError("x").transient


# -- experiment-runner integration -------------------------------------------


class TestRunnerStreams:
    @pytest.mark.parametrize("stream", STREAM_DRIVERS)
    def test_runner_results_identical(self, stream):
        runner = ExperimentRunner(TINY, games=["SWa"], stream=stream)
        result = runner.run("SWa", DTEXL_BEST)
        reference = ExperimentRunner(TINY, games=["SWa"]).run(
            "SWa", DTEXL_BEST
        )
        assert result == reference

    def test_runner_rejects_unknown_stream(self):
        with pytest.raises(ConfigError, match="unknown stream driver"):
            ExperimentRunner(TINY, stream="turbo")

    def test_streamed_runner_stamps_phase_seconds(self):
        runner = ExperimentRunner(TINY, games=["SWa"], stream="streaming")
        runner.run("SWa", BASELINE)
        assert runner.phase_seconds["streamed"] > 0.0

    def test_chunked_runner_renders_once_across_design_points(self, tmp_path):
        from repro.sim.checkpoint import TraceCheckpointStore

        store = TraceCheckpointStore(tmp_path / "traces")
        runner = ExperimentRunner(
            TINY, games=["SWa"], checkpoint_store=store, stream="streaming"
        )
        runner.run("SWa", BASELINE)
        runner.run("SWa", DTEXL_BEST)
        assert runner.renders_performed == 1
        fresh = ExperimentRunner(
            TINY, games=["SWa"], checkpoint_store=store, stream="streaming"
        )
        fresh.run("SWa", BASELINE)
        assert fresh.renders_performed == 0
