"""Tests for the subtile-to-SC assignment policies (Figure 8)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quad_grouping import SubtileLayout
from repro.core.subtile_assignment import (
    ASSIGNMENTS,
    FLP3_PERIOD,
    IDENTITY,
    SubtileAssignment,
    get_assignment,
)
from repro.core.tile_order import hilbert_order, s_order, scanline_order, z_order


class TestRegistry:
    def test_four_policies(self):
        assert set(ASSIGNMENTS) == {"const", "flp1", "flp2", "flp3"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_assignment("flp9")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SubtileAssignment("bad", "flip-everything")


class TestConstPolicy:
    def test_identity_everywhere(self):
        tiles = z_order(4, 4)
        perms = get_assignment("const").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        assert perms == [IDENTITY] * 16


class TestInterleavedLayout:
    @pytest.mark.parametrize("name", sorted(ASSIGNMENTS))
    def test_flips_meaningless_for_fine_grained(self, name):
        tiles = s_order(4, 4)
        perms = get_assignment(name).permutation_sequence(
            tiles, SubtileLayout.INTERLEAVED
        )
        assert perms == [IDENTITY] * 16


class TestPermutationValidity:
    @given(
        st.sampled_from(sorted(ASSIGNMENTS)),
        st.sampled_from(
            [SubtileLayout.SQUARE, SubtileLayout.XSTRIPS, SubtileLayout.YSTRIPS]
        ),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_permutation(self, name, layout, tx, ty):
        tiles = s_order(tx, ty)
        for perm in get_assignment(name).permutation_sequence(tiles, layout):
            assert sorted(perm) == [0, 1, 2, 3]


class TestFlp1SquareLayout:
    def test_horizontal_step_flips_columns(self):
        """Moving right: slots swap left/right so SCs continue across the edge."""
        tiles = [(0, 0), (1, 0)]
        perms = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        # Slot positions: 0=TL, 1=TR, 2=BL, 3=BR; flip_x swaps 0<->1, 2<->3.
        assert perms[0] == (0, 1, 2, 3)
        assert perms[1] == (1, 0, 3, 2)

    def test_vertical_step_flips_rows(self):
        tiles = [(0, 0), (0, 1)]
        perms = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        assert perms[1] == (2, 3, 0, 1)

    def test_shared_edge_gets_same_cores(self):
        """The right column of tile t equals the left column of tile t+1."""
        tiles = [(x, 0) for x in range(6)]
        perms = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        for a, b in zip(perms, perms[1:]):
            # a's right column (slots 1, 3) == b's left column (slots 0, 2).
            assert a[1] == b[0]
            assert a[3] == b[2]

    def test_non_adjacent_step_keeps_binding(self):
        tiles = [(0, 0), (3, 3)]
        perms = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        assert perms[0] == perms[1]


class TestFlp1Strips:
    def test_ystrips_flip_on_vertical_step_only(self):
        perms = get_assignment("flp1").permutation_sequence(
            [(0, 0), (0, 1)], SubtileLayout.YSTRIPS
        )
        assert perms[1] == (3, 2, 1, 0)

    def test_ystrips_ignore_horizontal_step(self):
        perms = get_assignment("flp1").permutation_sequence(
            [(0, 0), (1, 0)], SubtileLayout.YSTRIPS
        )
        assert perms[1] == IDENTITY

    def test_xstrips_flip_on_horizontal_step_only(self):
        perms = get_assignment("flp1").permutation_sequence(
            [(0, 0), (1, 0)], SubtileLayout.XSTRIPS
        )
        assert perms[1] == (3, 2, 1, 0)

    def test_ystrips_shared_edge_continuity(self):
        """S-order + YSTRIPS: bottom strip's SC meets the next top strip."""
        tiles = [(0, 0), (0, 1), (0, 2)]
        perms = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.YSTRIPS
        )
        for a, b in zip(perms, perms[1:]):
            assert a[3] == b[0]  # moving down: bottom strip -> top strip


class TestFlp2Fairness:
    def edge_share_counts(self, name, tiles):
        """How often each SC owns a subtile on the shared edge."""
        perms = get_assignment(name).permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        counts = Counter()
        for i in range(1, len(tiles)):
            dx = tiles[i][0] - tiles[i - 1][0]
            dy = tiles[i][1] - tiles[i - 1][1]
            if abs(dx) + abs(dy) != 1:
                continue
            if dx:
                entering = (0, 2) if dx > 0 else (1, 3)
            else:
                entering = (0, 1) if dy > 0 else (2, 3)
            for slot in entering:
                counts[perms[i][slot]] += 1
        return counts

    def test_flp1_favours_some_cores_on_hilbert(self):
        """The paper's flp1 flaw: SC3 nearly always gets the shared edge
        while SC0 rarely does (Fig 8d discussion)."""
        tiles = hilbert_order(8, 8)
        counts = self.edge_share_counts("flp1", tiles)
        assert counts[3] > 2 * counts[0]

    def test_flp2_spreads_shared_edges_on_hilbert(self):
        tiles = hilbert_order(8, 8)
        flp1 = self.edge_share_counts("flp1", tiles)
        flp2 = self.edge_share_counts("flp2", tiles)
        spread1 = max(flp1.values()) - min(flp1.values())
        spread2 = max(flp2.values()) - min(flp2.values())
        assert spread2 < spread1 / 4

    def test_flp3_spreads_shared_edges_on_hilbert(self):
        tiles = hilbert_order(8, 8)
        flp1 = self.edge_share_counts("flp1", tiles)
        flp3 = self.edge_share_counts("flp3", tiles)
        spread1 = max(flp1.values()) - min(flp1.values())
        spread3 = max(flp3.values()) - min(flp3.values())
        assert spread3 < spread1 / 4


class TestFlp3:
    def test_extra_flip_every_period(self):
        tiles = scanline_order(FLP3_PERIOD * 2, 1)
        flp1 = get_assignment("flp1").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        flp3 = get_assignment("flp3").permutation_sequence(
            tiles, SubtileLayout.SQUARE
        )
        assert flp1[: FLP3_PERIOD] == flp3[: FLP3_PERIOD]
        assert flp1[FLP3_PERIOD] != flp3[FLP3_PERIOD]
