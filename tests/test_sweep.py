"""Tests for the design-space sweep utility."""

import pytest

from repro.sim.experiment import ExperimentRunner
from repro.sim.sweep import DesignSweep, ROW_FIELDS, best_row, rows_to_csv


@pytest.fixture(scope="module")
def runner(tiny_config):
    return ExperimentRunner(tiny_config, games=["SWa"])


@pytest.fixture(scope="module")
def rows(runner):
    sweep = DesignSweep(
        groupings=["FG-xshift2", "CG-square"],
        assignments=["const", "flp2"],
        orders=["zorder"],
        decoupled=[False, True],
    )
    return sweep.run(runner).rows


class TestGrid:
    def test_cross_product_size(self):
        sweep = DesignSweep(
            groupings=["A", "B"], assignments=["c"], orders=["o1", "o2"],
            decoupled=[False],
        )
        assert len(sweep.design_points()) == 4

    def test_names_unique(self):
        sweep = DesignSweep()
        names = [p.name for p in sweep.design_points()]
        assert len(set(names)) == len(names)


class TestRows:
    def test_row_count(self, rows):
        assert len(rows) == 8

    def test_baseline_point_normalizes_to_one(self, rows):
        base_row = next(
            r for r in rows
            if r.grouping == "FG-xshift2" and r.assignment == "const"
            and not r.decoupled
        )
        assert base_row.l2_normalized == pytest.approx(1.0)
        assert base_row.speedup == pytest.approx(1.0)

    def test_cg_rows_reduce_l2(self, rows):
        cg = [r for r in rows if r.grouping == "CG-square"]
        fg = [r for r in rows if r.grouping == "FG-xshift2"]
        assert max(r.l2_normalized for r in cg) < min(
            r.l2_normalized for r in fg
        ) + 1e-9

    def test_decoupling_never_slows(self, rows):
        by_knobs = {
            (r.grouping, r.assignment, r.order): {} for r in rows
        }
        for r in rows:
            by_knobs[(r.grouping, r.assignment, r.order)][r.decoupled] = r
        for pair in by_knobs.values():
            assert pair[True].speedup >= pair[False].speedup * 0.999


class TestEmptySuite:
    def test_row_over_zero_games_has_zero_imbalance(self):
        from repro.core.dtexl import BASELINE, DTEXL_BEST
        from repro.sim.experiment import SuiteResult

        row = DesignSweep._row(
            DTEXL_BEST,
            SuiteResult(design_point=DTEXL_BEST.name),
            SuiteResult(design_point=BASELINE.name),
            games=[],
        )
        assert row.quad_imbalance == 0.0
        assert row.l2_normalized == 0.0


class TestExportAndSelect:
    def test_csv_round_trip(self, rows):
        text = rows_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(ROW_FIELDS)
        assert len(lines) == len(rows) + 1

    def test_best_by_speedup(self, rows):
        winner = best_row(rows, "speedup")
        assert winner.speedup == max(r.speedup for r in rows)

    def test_best_by_l2_minimizes(self, rows):
        winner = best_row(rows, "l2_accesses")
        assert winner.l2_accesses == min(r.l2_accesses for r in rows)

    def test_best_of_empty(self):
        assert best_row([]) is None
