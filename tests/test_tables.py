"""Tests for the plain-text table formatter."""

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["longer", 2]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent widths

    def test_floats_three_decimals(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_ints_unchanged(self):
        out = format_table(["n"], [[42]])
        assert "42" in out
