"""Tests for textures, mip chains and Morton addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.addressing import morton_decode, morton_encode
from repro.texture.texture import (
    LINE_BYTES,
    TEXEL_BYTES,
    Texture,
    TextureAllocator,
)


class TestMorton:
    def test_known_values(self):
        assert morton_encode(0, 0) == 0
        assert morton_encode(1, 0) == 1
        assert morton_encode(0, 1) == 2
        assert morton_encode(1, 1) == 3
        assert morton_encode(2, 0) == 4

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, x, y):
        assert morton_decode(morton_encode(x, y)) == (x, y)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_injective_within_square(self, x, y):
        other = morton_encode(x + 1, y)
        assert morton_encode(x, y) != other

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode(-1, 0)
        with pytest.raises(ValueError):
            morton_decode(-1)

    def test_adjacent_texels_share_cache_line(self):
        """The 4x4 Morton block of a 64B line holds 2D neighbours."""
        texture = Texture(0, 64, 64)
        line_a = texture.texel_line(0, 0)
        assert texture.texel_line(1, 0) == line_a
        assert texture.texel_line(0, 1) == line_a
        assert texture.texel_line(3, 3) == line_a
        assert texture.texel_line(4, 0) != line_a


class TestTexture:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Texture(0, 100, 64)

    def test_mip_chain_terminates_at_one(self):
        texture = Texture(0, 64, 32)
        last = texture.mip_levels[-1]
        assert (last.width, last.height) == (1, 1)

    def test_mip_chain_halves_each_level(self):
        texture = Texture(0, 64, 64)
        assert (texture.mip_levels[1].width, texture.mip_levels[1].height) == (32, 32)

    def test_total_bytes_about_four_thirds(self):
        texture = Texture(0, 256, 256)
        base = 256 * 256 * TEXEL_BYTES
        assert base < texture.total_bytes < base * 4 / 3 + 64

    def test_level_clamps(self):
        texture = Texture(0, 64, 64)
        assert texture.level(-2).level == 0
        assert texture.level(99).level == texture.max_lod

    def test_wrap_repeats(self):
        texture = Texture(0, 64, 64)
        assert texture.wrap(65, -1, 0) == (1, 63)

    def test_addresses_within_texture_range(self):
        texture = Texture(0, 64, 64, base_address=1 << 20)
        for lod in range(texture.num_mip_levels):
            mip = texture.level(lod)
            for x, y in [(0, 0), (mip.width - 1, mip.height - 1)]:
                addr = texture.texel_address(x, y, lod)
                assert 1 << 20 <= addr < (1 << 20) + texture.total_bytes

    def test_mip_levels_do_not_overlap(self):
        texture = Texture(0, 32, 32)
        addr_l0 = texture.texel_address(31, 31, 0)
        addr_l1 = texture.texel_address(0, 0, 1)
        assert addr_l0 < addr_l1

    def test_rectangular_texture_addresses_unique(self):
        texture = Texture(0, 64, 16)
        seen = set()
        for y in range(16):
            for x in range(64):
                addr = texture.texel_address(x, y, 0)
                assert addr not in seen
                seen.add(addr)

    def test_tall_texture_addresses_unique(self):
        texture = Texture(0, 16, 64)
        seen = set()
        for y in range(64):
            for x in range(16):
                addr = texture.texel_address(x, y, 0)
                assert addr not in seen
                seen.add(addr)

    def test_texel_value_deterministic_and_byte_range(self):
        texture = Texture(0, 64, 64, seed=5)
        a = texture.texel_value(3, 4)
        assert a == texture.texel_value(3, 4)
        assert all(0 <= c <= 255 for c in a)

    def test_texel_value_varies(self):
        texture = Texture(0, 64, 64, seed=5)
        values = {texture.texel_value(x, 0) for x in range(16)}
        assert len(values) > 8


class TestTextureAllocator:
    def test_allocations_do_not_overlap(self):
        allocator = TextureAllocator()
        a = allocator.create(64, 64)
        b = allocator.create(128, 128)
        assert a.base_address + a.total_bytes <= b.base_address

    def test_ids_sequential(self):
        allocator = TextureAllocator()
        assert allocator.create(32, 32).texture_id == 0
        assert allocator.create(32, 32).texture_id == 1

    def test_get(self):
        allocator = TextureAllocator()
        texture = allocator.create(32, 32)
        assert allocator.get(0) is texture

    def test_total_footprint(self):
        allocator = TextureAllocator()
        a = allocator.create(64, 64)
        b = allocator.create(32, 32)
        assert allocator.total_footprint_bytes == a.total_bytes + b.total_bytes

    def test_texture_region_above_vertex_region(self):
        allocator = TextureAllocator()
        texture = allocator.create(32, 32)
        assert texture.base_address >= 1 << 28
