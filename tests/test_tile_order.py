"""Tests for the tile traversal orders (Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tile_order import (
    TILE_ORDERS,
    hilbert_order,
    hilbert_rect_order,
    s_order,
    scanline_order,
    tile_order,
    z_order,
)

dims = st.integers(min_value=1, max_value=20)


class TestPermutationProperty:
    @given(dims, dims, st.sampled_from(sorted(TILE_ORDERS)))
    @settings(max_examples=60, deadline=None)
    def test_every_order_is_a_permutation_of_the_grid(self, tx, ty, name):
        order = tile_order(name, tx, ty)
        assert len(order) == tx * ty
        assert set(order) == {(x, y) for x in range(tx) for y in range(ty)}

    def test_rejects_unknown_name(self):
        with pytest.raises(KeyError):
            tile_order("spiral", 4, 4)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            scanline_order(0, 4)


class TestScanline:
    def test_row_major(self):
        assert scanline_order(3, 2) == [
            (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)
        ]


class TestSOrder:
    def test_serpentine_columns(self):
        assert s_order(2, 3) == [
            (0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)
        ]

    @given(dims, dims)
    @settings(max_examples=40, deadline=None)
    def test_consecutive_tiles_always_share_an_edge(self, tx, ty):
        order = s_order(tx, ty)
        for a, b in zip(order, order[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestZOrder:
    def test_first_quad_of_power_of_two(self):
        order = z_order(4, 4)
        assert order[:4] == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_aligned_windows_are_2x2_blocks(self):
        """Z-order's locality: every aligned group of 4 is a 2x2 block."""
        order = z_order(16, 16)
        for k in range(0, len(order), 4):
            window = order[k : k + 4]
            xs = {x for x, _ in window}
            ys = {y for _, y in window}
            assert max(xs) - min(xs) == 1
            assert max(ys) - min(ys) == 1

    def test_non_power_of_two_still_complete(self):
        order = z_order(5, 3)
        assert len(order) == 15


class TestHilbert:
    def test_square_consecutive_adjacent(self):
        order = hilbert_order(8, 8)
        for a, b in zip(order, order[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_hilbert_locality_beats_z(self):
        def mean_step(order):
            steps = [
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a, b in zip(order, order[1:])
            ]
            return sum(steps) / len(steps)

        assert mean_step(hilbert_order(16, 16)) <= mean_step(z_order(16, 16))


class TestHilbertRect:
    def test_subframes_traversed_boustrophedonically(self):
        """With 2x1 sub-frames of side 8, the second sub-frame follows."""
        order = hilbert_rect_order(16, 8, subframe=8)
        first_half = order[:64]
        second_half = order[64:]
        assert all(x < 8 for x, _ in first_half)
        assert all(x >= 8 for x, _ in second_half)

    def test_partial_subframes_clipped(self):
        order = hilbert_rect_order(10, 6, subframe=8)
        assert len(order) == 60

    def test_rejects_non_power_of_two_subframe(self):
        with pytest.raises(ValueError):
            hilbert_rect_order(8, 8, subframe=6)

    def test_within_subframe_steps_adjacent(self):
        order = hilbert_rect_order(8, 8, subframe=8)
        for a, b in zip(order, order[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_paper_scale_grid(self):
        """62x24 tiles (Table II screen) is fully covered."""
        order = hilbert_rect_order(62, 24)
        assert len(order) == 62 * 24
        assert len(set(order)) == 62 * 24
