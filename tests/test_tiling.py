"""Tests for the Tiling Engine: binning, Parameter Buffer, Tile Fetcher."""

import pytest

from repro.config import GPUConfig
from repro.geometry.mesh import ShaderProgram
from repro.geometry.primitive_assembly import Primitive
from repro.geometry.vec import Vec2, Vec3, Vec4
from repro.geometry.vertex_stage import TransformedVertex
from repro.memory.hierarchy import MemoryHierarchy
from repro.raster.setup import setup_primitive
from repro.tiling.parameter_buffer import (
    ATTRIBUTE_RECORD_BYTES,
    ParameterBuffer,
)
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import TileFetcher
from repro.core.tile_order import scanline_order


@pytest.fixture
def config():
    return GPUConfig(screen_width=128, screen_height=64)  # 4x2 tiles


def screen_prim(config, pts, pid=0):
    vertices = tuple(
        TransformedVertex(
            clip_position=Vec4(
                x / config.screen_width * 2 - 1,
                1 - y / config.screen_height * 2,
                0.0, 1.0,
            ),
            uv=Vec2(0, 0), color=Vec3(1, 1, 1),
        )
        for x, y in pts
    )
    prim = Primitive(
        primitive_id=pid, vertices=vertices, texture_id=0,
        shader=ShaderProgram(),
    )
    return setup_primitive(prim, config.screen_width, config.screen_height)


class TestPolygonListBuilder:
    def test_small_triangle_bins_to_one_tile(self, config):
        prim = screen_prim(config, [(5, 5), (20, 5), (5, 20)])
        builder = PolygonListBuilder(config)
        buffer = builder.build([prim])
        assert set(buffer.tile_lists) == {(0, 0)}

    def test_spanning_triangle_bins_to_multiple_tiles(self, config):
        prim = screen_prim(config, [(5, 5), (120, 5), (5, 60)])
        builder = PolygonListBuilder(config)
        buffer = builder.build([prim])
        assert (0, 0) in buffer.tile_lists
        assert (3, 0) in buffer.tile_lists
        assert (0, 1) in buffer.tile_lists

    def test_diagonal_triangle_skips_far_corner_tile(self, config):
        """bbox covers all tiles, but the far corner is empty."""
        prim = screen_prim(config, [(0, 0), (127, 0), (0, 63)])
        builder = PolygonListBuilder(config)
        buffer = builder.build([prim])
        assert (3, 1) not in buffer.tile_lists

    def test_program_order_within_tile(self, config):
        prims = [
            screen_prim(config, [(5, 5), (20, 5), (5, 20)], pid=i)
            for i in range(3)
        ]
        buffer = PolygonListBuilder(config).build(prims)
        listed = [p.primitive_id for p in buffer.primitives_for_tile((0, 0))]
        assert listed == [0, 1, 2]

    def test_offscreen_primitive_not_binned(self, config):
        prim = screen_prim(config, [(-50, -50), (-10, -50), (-50, -10)])
        buffer = PolygonListBuilder(config).build([prim])
        assert buffer.tile_lists == {}

    def test_bin_entry_counters(self, config):
        prim = screen_prim(config, [(5, 5), (60, 5), (5, 40)])
        builder = PolygonListBuilder(config)
        buffer = builder.build([prim])
        assert builder.primitives_binned == 1
        assert builder.bin_entries == buffer.total_list_entries


class TestParameterBuffer:
    def test_attributes_stored_once_per_primitive(self, config):
        prim = screen_prim(config, [(5, 5), (120, 5), (5, 60)])
        buffer = PolygonListBuilder(config).build([prim])
        assert buffer.num_unique_primitives == 1
        assert buffer.total_list_entries >= 4

    def test_footprint_grows_with_list_entries(self, config):
        small = PolygonListBuilder(config).build(
            [screen_prim(config, [(5, 5), (10, 5), (5, 10)])]
        )
        large = PolygonListBuilder(config).build(
            [screen_prim(config, [(5, 5), (120, 5), (5, 60)])]
        )
        assert large.footprint_bytes() > small.footprint_bytes()

    def test_attribute_addresses_disjoint(self):
        buffer = ParameterBuffer()
        a = buffer.attribute_address(0)
        b = buffer.attribute_address(1)
        assert b - a == ATTRIBUTE_RECORD_BYTES

    def test_list_addresses_after_attributes(self, config):
        prim = screen_prim(config, [(5, 5), (20, 5), (5, 20)])
        buffer = PolygonListBuilder(config).build([prim])
        list_addr = buffer.list_entry_address((0, 0), 0)
        assert list_addr > buffer.attribute_address(0)

    def test_empty_tile_queries(self, config):
        buffer = PolygonListBuilder(config).build([])
        assert buffer.primitives_for_tile((0, 0)) == []
        assert buffer.tile_primitive_count((0, 0)) == 0


class TestTileFetcher:
    def test_fetch_yields_every_tile_in_order(self, config):
        prim = screen_prim(config, [(5, 5), (20, 5), (5, 20)])
        buffer = PolygonListBuilder(config).build([prim])
        fetcher = TileFetcher(config)
        order = scanline_order(config.tiles_x, config.tiles_y)
        fetched = list(fetcher.fetch(buffer, order))
        assert [f.tile for f in fetched] == order
        assert fetched[0].primitives  # tile (0,0) has the triangle
        assert not fetched[1].primitives

    def test_fetch_traffic_goes_through_tile_cache(self, config):
        prim = screen_prim(config, [(5, 5), (20, 5), (5, 20)])
        buffer = PolygonListBuilder(config).build([prim])
        hierarchy = MemoryHierarchy(config)
        fetcher = TileFetcher(config, hierarchy)
        order = scanline_order(config.tiles_x, config.tiles_y)
        list(fetcher.fetch(buffer, order))
        assert hierarchy.tile_cache.stats.accesses > 0

    def test_fetch_lines_cover_list_and_attributes(self, config):
        prim = screen_prim(config, [(5, 5), (20, 5), (5, 20)])
        buffer = PolygonListBuilder(config).build([prim])
        lines = TileFetcher.fetch_lines(
            buffer, (0, 0), buffer.primitives_for_tile((0, 0))
        )
        assert len(lines) >= 2  # at least one list line + one attribute line

    def test_fetch_lines_empty_tile(self, config):
        buffer = PolygonListBuilder(config).build([])
        assert TileFetcher.fetch_lines(buffer, (0, 0), []) == []

    def test_fetch_cycles_scale_with_primitives(self, config):
        prims = [
            screen_prim(config, [(5, 5), (20, 5), (5, 20)], pid=i)
            for i in range(4)
        ]
        buffer = PolygonListBuilder(config).build(prims)
        fetcher = TileFetcher(config)
        assert fetcher.fetch_cycles(buffer, (0, 0)) == (
            4 * config.tile_fetcher_cycles_per_primitive
        )
        assert fetcher.fetch_cycles(buffer, (3, 1)) == 1
