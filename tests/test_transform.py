"""Tests for graphics transforms."""

import math

import pytest

from repro.geometry.transform import (
    look_at,
    ndc_to_screen_xy,
    orthographic,
    perspective,
    rotate_y,
    scale,
    translate,
    viewport_transform,
)
from repro.geometry.vec import Vec3


class TestBasicTransforms:
    def test_translate(self):
        m = translate(Vec3(1, 2, 3))
        assert m.transform_point(Vec3(0, 0, 0)).xyz() == Vec3(1, 2, 3)

    def test_scale(self):
        m = scale(Vec3(2, 3, 4))
        assert m.transform_point(Vec3(1, 1, 1)).xyz() == Vec3(2, 3, 4)

    def test_rotate_y_quarter_turn(self):
        m = rotate_y(math.pi / 2)
        rotated = m.transform_point(Vec3(1, 0, 0)).xyz()
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.z == pytest.approx(-1.0)

    def test_rotate_y_preserves_y(self):
        m = rotate_y(1.234)
        assert m.transform_point(Vec3(0, 5, 0)).xyz().y == pytest.approx(5.0)


class TestLookAt:
    def test_eye_maps_to_origin(self):
        view = look_at(Vec3(1, 2, 3), Vec3(0, 0, 0), Vec3(0, 1, 0))
        at_origin = view.transform_point(Vec3(1, 2, 3)).xyz()
        assert at_origin.length() == pytest.approx(0.0, abs=1e-12)

    def test_target_on_negative_z(self):
        view = look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        target = view.transform_point(Vec3(0, 0, 0)).xyz()
        assert target.z == pytest.approx(-5.0)
        assert target.x == pytest.approx(0.0, abs=1e-12)


class TestPerspective:
    def test_point_on_near_plane_maps_to_minus_one(self):
        proj = perspective(math.radians(90), 1.0, 1.0, 100.0)
        clip = proj.transform_point(Vec3(0, 0, -1.0))
        assert clip.perspective_divide().z == pytest.approx(-1.0)

    def test_point_on_far_plane_maps_to_plus_one(self):
        proj = perspective(math.radians(90), 1.0, 1.0, 100.0)
        clip = proj.transform_point(Vec3(0, 0, -100.0))
        assert clip.perspective_divide().z == pytest.approx(1.0)

    def test_w_is_view_depth(self):
        proj = perspective(math.radians(60), 2.0, 0.5, 50.0)
        clip = proj.transform_point(Vec3(0, 0, -7.0))
        assert clip.w == pytest.approx(7.0)

    def test_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 0.0, 1.0)


class TestOrthographic:
    def test_corners_map_to_ndc_corners(self):
        proj = orthographic(0, 100, 50, 0)
        low = proj.transform_point(Vec3(0, 50, 0)).perspective_divide()
        high = proj.transform_point(Vec3(100, 0, 0)).perspective_divide()
        assert (low.x, low.y) == pytest.approx((-1.0, -1.0))
        assert (high.x, high.y) == pytest.approx((1.0, 1.0))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            orthographic(0, 0, 0, 1)


class TestViewport:
    def test_center_of_ndc_is_screen_center(self):
        screen = viewport_transform(Vec3(0, 0, 0), 200, 100)
        assert (screen.x, screen.y) == (100.0, 50.0)
        assert screen.z == 0.5

    def test_y_flips(self):
        top = viewport_transform(Vec3(0, 1, 0), 200, 100)
        assert top.y == 0.0
        bottom = viewport_transform(Vec3(0, -1, 0), 200, 100)
        assert bottom.y == 100.0

    def test_depth_range(self):
        near = viewport_transform(Vec3(0, 0, -1), 10, 10)
        far = viewport_transform(Vec3(0, 0, 1), 10, 10)
        assert near.z == 0.0
        assert far.z == 1.0

    def test_ndc_to_screen_xy(self):
        xy = ndc_to_screen_xy(Vec3(-1, 1, 0), 64, 32)
        assert (xy.x, xy.y) == (0.0, 0.0)
