"""Tests for the vector/matrix math primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.vec import Mat4, Vec2, Vec3, Vec4

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestVec2:
    def test_add_sub(self):
        a, b = Vec2(1, 2), Vec2(3, 5)
        assert a + b == Vec2(4, 7)
        assert b - a == Vec2(2, 3)

    def test_scalar_multiply_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_dot_and_length(self):
        assert Vec2(3, 4).dot(Vec2(3, 4)) == 25
        assert Vec2(3, 4).length() == 5.0

    def test_as_tuple(self):
        assert Vec2(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestVec3:
    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_cross_anticommutative(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a.cross(b) == b.cross(a) * -1.0

    def test_normalized_unit_length(self):
        n = Vec3(3, 4, 0).normalized()
        assert n.length() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3(0, 0, 0).normalized()

    @given(finite, finite, finite)
    @settings(max_examples=50, deadline=None)
    def test_dot_with_self_nonnegative(self, x, y, z):
        v = Vec3(x, y, z)
        assert v.dot(v) >= 0.0


class TestVec4:
    def test_perspective_divide(self):
        v = Vec4(2, 4, 6, 2)
        assert v.perspective_divide() == Vec3(1, 2, 3)

    def test_perspective_divide_zero_w_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec4(1, 1, 1, 0).perspective_divide()

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec4(0, 0, 0, 1), Vec4(2, 4, 6, 3)
        assert Vec4.lerp(a, b, 0.0) == a
        assert Vec4.lerp(a, b, 1.0) == b
        assert Vec4.lerp(a, b, 0.5) == Vec4(1, 2, 3, 2)

    def test_from_vec3(self):
        assert Vec4.from_vec3(Vec3(1, 2, 3)) == Vec4(1, 2, 3, 1)
        assert Vec4.from_vec3(Vec3(1, 2, 3), 0.0).w == 0.0


class TestMat4:
    def test_identity_transform(self):
        v = Vec4(1, 2, 3, 1)
        assert Mat4.identity().transform(v) == v

    def test_matmul_identity(self):
        m = Mat4([[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [13, 14, 15, 16]])
        assert m @ Mat4.identity() == m
        assert Mat4.identity() @ m == m

    def test_matmul_composition(self):
        """(A @ B) v == A (B v)."""
        a = Mat4([[1, 0, 0, 2], [0, 1, 0, 3], [0, 0, 1, 4], [0, 0, 0, 1]])
        b = Mat4([[2, 0, 0, 0], [0, 2, 0, 0], [0, 0, 2, 0], [0, 0, 0, 1]])
        v = Vec4(1, 1, 1, 1)
        assert (a @ b).transform(v) == a.transform(b.transform(v))

    def test_transform_point_appends_w1(self):
        m = Mat4([[1, 0, 0, 5], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]])
        assert m.transform_point(Vec3(0, 0, 0)) == Vec4(5, 0, 0, 1)

    def test_transform_direction_ignores_translation(self):
        m = Mat4([[1, 0, 0, 5], [0, 1, 0, 7], [0, 0, 1, 9], [0, 0, 0, 1]])
        assert m.transform_direction(Vec3(1, 0, 0)) == Vec3(1, 0, 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Mat4([[1, 2, 3]])

    def test_repr_roundtrippable_shape(self):
        m = Mat4.identity()
        assert "Mat4" in repr(m)
