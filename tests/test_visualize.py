"""Tests for the ASCII visualizations."""

import pytest

from repro.analysis.visualize import (
    render_assignment_ascii,
    render_grouping_ascii,
    render_imbalance_heatmap,
    render_schedule_ascii,
    render_tile_order_ascii,
)
from repro.config import GPUConfig
from repro.core.quad_grouping import get_grouping
from repro.core.scheduler import QuadScheduler
from repro.core.subtile_assignment import get_assignment
from repro.core.tile_order import s_order


@pytest.fixture
def scheduler():
    config = GPUConfig(screen_width=128, screen_height=64)
    return QuadScheduler(
        config=config,
        grouping=get_grouping("CG-square"),
        assignment=get_assignment("flp1"),
        order_name="sorder",
    )


class TestGroupingArt:
    def test_grid_dimensions(self):
        art = render_grouping_ascii(get_grouping("CG-square"), side=8)
        lines = art.splitlines()
        assert len(lines) == 9  # header + 8 rows
        assert all(len(line) == 8 for line in lines[1:])

    def test_quadrants_render_distinctly(self):
        art = render_grouping_ascii(get_grouping("CG-square"), side=4)
        rows = art.splitlines()[1:]
        assert rows[0] == "0011"
        assert rows[3] == "2233"

    def test_fine_grained_uses_all_glyphs(self):
        art = render_grouping_ascii(get_grouping("FG-xshift2"), side=8)
        body = "".join(art.splitlines()[1:])
        assert set(body) == {"0", "1", "2", "3"}


class TestTileOrderArt:
    def test_sequence_numbers_placed(self):
        order = s_order(3, 2)
        art = render_tile_order_ascii(order, 3, 2)
        lines = art.splitlines()
        assert lines[0].split() == ["0", "3", "4"]
        assert lines[1].split() == ["1", "2", "5"]


class TestAssignmentArt:
    def test_steps_side_by_side(self, scheduler):
        art = render_assignment_ascii(scheduler, [0, 1], side=4)
        assert "step 0" in art
        assert "step 1" in art

    def test_flip_visible_between_adjacent_tiles(self, scheduler):
        art = render_assignment_ascii(scheduler, [0, 1], side=4)
        lines = art.splitlines()
        # Step 0 top row starts with SC0; step 1 (below, flipped) with SC2.
        first_grid_row = lines[1]
        assert first_grid_row.split()[0].startswith("0")
        assert first_grid_row.split()[1].startswith("2")


class TestScheduleOverview:
    def test_contains_all_sections(self, scheduler):
        art = render_schedule_ascii(scheduler, max_tiles=3)
        assert "CG-square" in art
        assert "tile order 'sorder'" in art
        assert "subtile assignment 'flp1'" in art

    def test_respects_max_tiles(self, scheduler):
        art = render_schedule_ascii(scheduler, max_tiles=2)
        assert "step 1" in art
        assert "step 2" not in art


class TestHeatmap:
    def test_dimensions_and_ramp(self):
        tiles = [(0, 0), (1, 0), (0, 1), (1, 1)]
        values = [[1, 1], [9, 1], [0, 0], [5, 5]]
        art = render_imbalance_heatmap(values, tiles, 2, 2)
        lines = art.splitlines()
        assert len(lines) == 2
        assert len(lines[0]) == 2
        # Balanced tiles render as spaces; the most imbalanced is darkest.
        assert lines[0][0] == " "
        assert lines[0][1] == "@"

    def test_empty(self):
        art = render_imbalance_heatmap([], [], 2, 1)
        assert art == "  "
