"""Tests for the synthetic benchmark suite (Table I stand-ins)."""

import pytest

from repro.config import GPUConfig
from repro.workloads.games import GAMES, build_game, game_aliases
from repro.workloads.recipe import (
    MIB,
    SceneRecipe,
    chain_bytes,
    plan_texture_sides,
)
import random


@pytest.fixture(scope="module")
def config():
    return GPUConfig(screen_width=128, screen_height=64)


class TestTableOne:
    def test_ten_games(self):
        assert len(GAMES) == 10

    def test_table1_aliases(self):
        assert game_aliases() == [
            "CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr",
        ]

    def test_table1_footprints_recorded(self):
        expected = {
            "CCS": 2.4, "SoD": 1.4, "TRu": 0.4, "SWa": 0.2, "CRa": 2.8,
            "RoK": 6.8, "DDS": 1.4, "Snp": 1.8, "Mze": 2.4, "GTr": 0.7,
        }
        for alias, footprint in expected.items():
            assert GAMES[alias].texture_footprint_mib == footprint

    def test_table1_types(self):
        assert GAMES["CCS"].scene_type == "2D"
        assert GAMES["RoK"].scene_type == "2D"
        assert all(
            GAMES[a].scene_type == "3D"
            for a in ["SoD", "TRu", "SWa", "CRa", "DDS", "Snp", "Mze", "GTr"]
        )

    def test_unknown_game_raises(self, config):
        with pytest.raises(KeyError):
            build_game("XYZ", config)


class TestTexturePlanning:
    def test_chain_bytes_about_four_thirds(self):
        assert chain_bytes(256) == int(256 * 256 * 4 * 4 / 3)

    def test_plan_hits_budget_roughly(self):
        rng = random.Random(1)
        sides = plan_texture_sides(int(2.0 * MIB), 6, rng)
        total = sum(chain_bytes(s) for s in sides)
        assert 0.5 * 2.0 * MIB <= total <= 1.2 * 2.0 * MIB

    def test_plan_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            plan_texture_sides(0, 4, random.Random(0))

    def test_plan_returns_powers_of_two(self):
        sides = plan_texture_sides(MIB, 8, random.Random(2))
        assert all(s & (s - 1) == 0 for s in sides)
        assert all(32 <= s <= 1024 for s in sides)


@pytest.mark.parametrize("alias", game_aliases())
class TestEveryGameBuilds:
    def test_builds_with_content(self, alias, config):
        workload = build_game(alias, config)
        assert workload.scene.draws
        assert workload.textures

    def test_footprint_tracks_table1(self, alias, config):
        workload = build_game(alias, config)
        target = GAMES[alias].texture_footprint_mib * MIB
        actual = workload.texture_footprint_bytes
        assert 0.4 * target <= actual <= 1.3 * target

    def test_deterministic(self, alias, config):
        a = build_game(alias, config)
        b = build_game(alias, config)
        assert len(a.scene.draws) == len(b.scene.draws)
        va = a.scene.draws[0].mesh.vertices[0].position
        vb = b.scene.draws[0].mesh.vertices[0].position
        assert va == vb


class TestRecipeKnobs:
    def test_sprite_count_scales_with_depth_complexity(self, config):
        base = SceneRecipe(
            name="a", seed=1, is_3d=False, texture_budget_mib=0.3,
            depth_complexity=1.0,
        )
        deep = SceneRecipe(
            name="b", seed=1, is_3d=False, texture_budget_mib=0.3,
            depth_complexity=4.0,
        )
        assert len(deep.build(config).scene.draws) > len(
            base.build(config).scene.draws
        )

    def test_blend_fraction_respected(self, config):
        recipe = SceneRecipe(
            name="blendy", seed=3, is_3d=False, texture_budget_mib=0.3,
            blend_fraction=1.0, background=False,
        )
        scene = recipe.build(config).scene
        assert all(d.blend for d in scene.draws)

    def test_no_background_option(self, config):
        with_bg = SceneRecipe(
            name="bg", seed=2, is_3d=False, texture_budget_mib=0.3,
        )
        without = SceneRecipe(
            name="nobg", seed=2, is_3d=False, texture_budget_mib=0.3,
            background=False,
        )
        assert len(with_bg.build(config).scene.draws) == (
            len(without.build(config).scene.draws) + 1
        )

    def test_3d_uses_perspective(self, config):
        recipe = SceneRecipe(
            name="p", seed=4, is_3d=True, texture_budget_mib=0.3,
        )
        scene = recipe.build(config).scene
        # Perspective projection has row 3 == [0, 0, -1, 0].
        assert scene.projection_matrix.rows[3] == (0.0, 0.0, -1.0, 0.0)

    def test_2d_uses_orthographic(self, config):
        recipe = SceneRecipe(
            name="o", seed=4, is_3d=False, texture_budget_mib=0.3,
        )
        scene = recipe.build(config).scene
        assert scene.projection_matrix.rows[3] == (0.0, 0.0, 0.0, 1.0)

    def test_horizontal_clustering_concentrates_rows(self, config):
        """Clustered scenes put most sprite centres in the gravity bands."""
        clustered = SceneRecipe(
            name="c", seed=5, is_3d=False, texture_budget_mib=0.3,
            horizontal_clustering=1.0, background=False,
            depth_complexity=4.0,
        )
        scene = clustered.build(config).scene
        heights = []
        for draw in scene.draws:
            ys = [v.position.y for v in draw.mesh.vertices]
            heights.append((min(ys) + max(ys)) / 2 / config.screen_height)
        bands = [0.25, 0.55, 0.8]
        near_band = sum(
            1 for h in heights if any(abs(h - b) < 0.15 for b in bands)
        )
        assert near_band > len(heights) * 0.8


class TestAtlasRecipes:
    def test_atlas_sprites_use_one_texture(self, config):
        recipe = SceneRecipe(
            name="atlased", seed=9, is_3d=False, texture_budget_mib=0.5,
            atlas_grid=4, background=False, depth_complexity=1.5,
        )
        workload = recipe.build(config)
        texture_ids = {d.texture_id for d in workload.scene.draws}
        assert len(texture_ids) == 1

    def test_atlas_uv_windows_within_cells(self, config):
        recipe = SceneRecipe(
            name="atlased2", seed=9, is_3d=False, texture_budget_mib=0.5,
            atlas_grid=4, background=False, depth_complexity=1.5,
        )
        workload = recipe.build(config)
        for draw in workload.scene.draws:
            us = [v.uv.x for v in draw.mesh.vertices]
            vs = [v.uv.y for v in draw.mesh.vertices]
            assert max(us) - min(us) <= 0.25
            assert max(vs) - min(vs) <= 0.25
            assert 0.0 <= min(us) and max(us) <= 1.0

    def test_atlas_off_by_default(self, config):
        recipe = SceneRecipe(
            name="plain", seed=9, is_3d=False, texture_budget_mib=0.5,
            background=False, depth_complexity=1.5, max_textures=4,
        )
        workload = recipe.build(config)
        assert len({d.texture_id for d in workload.scene.draws}) > 1
