"""Tests for the Z-Buffer and Early-Z test."""

import numpy as np
import pytest

from repro.raster.zbuffer import ZBuffer


class TestScalarPath:
    def test_first_fragment_passes(self):
        zb = ZBuffer(32)
        assert zb.test_and_update(0, 0, 0.5) is True

    def test_farther_fragment_rejected(self):
        zb = ZBuffer(32)
        zb.test_and_update(0, 0, 0.5)
        assert zb.test_and_update(0, 0, 0.7) is False

    def test_nearer_fragment_passes(self):
        zb = ZBuffer(32)
        zb.test_and_update(0, 0, 0.5)
        assert zb.test_and_update(0, 0, 0.3) is True

    def test_equal_depth_rejected(self):
        zb = ZBuffer(32)
        zb.test_and_update(0, 0, 0.5)
        assert zb.test_and_update(0, 0, 0.5) is False

    def test_no_depth_write_passes_but_keeps_depth(self):
        zb = ZBuffer(32)
        assert zb.test_and_update(0, 0, 0.5, depth_write=False) is True
        assert zb.test_and_update(0, 0, 0.7) is True

    def test_pixels_independent(self):
        zb = ZBuffer(32)
        zb.test_and_update(0, 0, 0.1)
        assert zb.test_and_update(1, 0, 0.9) is True

    def test_clear_resets_depth(self):
        zb = ZBuffer(32)
        zb.test_and_update(0, 0, 0.1)
        zb.clear()
        assert zb.test_and_update(0, 0, 0.9) is True

    def test_rejects_odd_tile(self):
        with pytest.raises(ValueError):
            ZBuffer(31)


class TestBlockPath:
    def test_block_matches_scalar(self):
        scalar, block = ZBuffer(8), ZBuffer(8)
        z1 = np.linspace(0.1, 0.9, 16).reshape(4, 4)
        z2 = np.full((4, 4), 0.5)
        mask = np.ones((4, 4), dtype=bool)
        expected1 = np.array(
            [[scalar.test_and_update(x, y, z1[y, x]) for x in range(4)]
             for y in range(4)]
        ).T.reshape(4, 4)
        got1 = block.test_block(0, 0, z1, mask)
        # Compare element-wise via a fresh scalar pass.
        assert got1.all()  # first pass always passes
        got2 = block.test_block(0, 0, z2, mask)
        for y in range(4):
            for x in range(4):
                assert got2[y, x] == (0.5 < z1[y, x])

    def test_block_respects_mask(self):
        zb = ZBuffer(8)
        z = np.full((2, 2), 0.5)
        mask = np.array([[True, False], [False, True]])
        passed = zb.test_block(0, 0, z, mask)
        assert passed[0, 0] and passed[1, 1]
        assert not passed[0, 1] and not passed[1, 0]
        assert zb.tests == 2

    def test_block_offset_region(self):
        zb = ZBuffer(8)
        z = np.full((2, 2), 0.3)
        zb.test_block(4, 4, z, np.ones((2, 2), dtype=bool))
        assert zb.test_and_update(4, 4, 0.5) is False
        assert zb.test_and_update(0, 0, 0.5) is True

    def test_block_no_depth_write(self):
        zb = ZBuffer(8)
        z = np.full((2, 2), 0.3)
        zb.test_block(0, 0, z, np.ones((2, 2), dtype=bool), depth_write=False)
        assert zb.test_and_update(0, 0, 0.9) is True


class TestStats:
    def test_cull_rate(self):
        zb = ZBuffer(8)
        zb.test_and_update(0, 0, 0.5)
        zb.test_and_update(0, 0, 0.9)
        zb.test_and_update(0, 0, 0.8)
        assert zb.cull_rate == pytest.approx(2 / 3)

    def test_cull_rate_idle(self):
        assert ZBuffer(8).cull_rate == 0.0
